package shard

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// movingKeys returns test keys that change owner when cur grows one shard,
// mapped source shard → keys, plus a set of keys that stay put.
func movingKeys(cur *Ring, prefix string, want int) (moving map[int][]string, staying []string) {
	grown := cur.Grow()
	moving = make(map[int][]string)
	total := 0
	for i := 0; total < want && i < 100000; i++ {
		key := fmt.Sprintf("%s:%d", prefix, i)
		if from, to := cur.ShardString(key), grown.ShardString(key); from != to {
			moving[from] = append(moving[from], key)
			total++
		} else if len(staying) < want {
			staying = append(staying, key)
		}
	}
	return moving, staying
}

// TestLiveMigrationMovesKeys: AddShard+Rebalance migrates exactly the
// grown ring's key ranges onto the new shard — values, versions, and
// counters survive, the source drops its copies, and a client opened
// before the rebalance re-routes through the redirect path.
func TestLiveMigrationMovesKeys(t *testing.T) {
	c := startTestCluster(t, testOptions(3))
	cl := testClient(t, c, "app")
	ctx := context.Background()

	moving, staying := movingKeys(c.CurrentRing(), "mig", 24)
	if len(moving) == 0 {
		t.Fatal("no moving keys found")
	}
	var allMoving []string
	for _, keys := range moving {
		allMoving = append(allMoving, keys...)
	}

	// Seed state the migration must carry: plain values (two writes, so
	// versions reach 2), counters (5 increments each), and untouched keys.
	for _, key := range append(append([]string(nil), allMoving...), staying...) {
		if _, err := cl.Put(ctx, []byte(key), []byte("v1-"+key)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Put(ctx, []byte(key), []byte("v2-"+key)); err != nil {
			t.Fatal(err)
		}
	}
	counter := allMoving[0] + "/counter"
	ctrShard := c.CurrentRing().ShardString(counter)
	for i := 0; i < 5; i++ {
		if _, err := cl.Increment(ctx, []byte(counter), 1); err != nil {
			t.Fatal(err)
		}
	}

	if s, err := c.AddShard(); err != nil || s != 3 {
		t.Fatalf("AddShard = %d, %v", s, err)
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	ring := c.CurrentRing()
	if ring.Shards() != 4 || ring.Epoch() != 1 {
		t.Fatalf("ring after rebalance: %d shards epoch %d", ring.Shards(), ring.Epoch())
	}

	// The pre-rebalance client reads every key back (bounced operations
	// re-route) and sees the latest values.
	for _, key := range append(append([]string(nil), allMoving...), staying...) {
		v, ok, err := cl.Get(ctx, []byte(key))
		if err != nil || !ok || string(v) != "v2-"+key {
			t.Fatalf("get %q after rebalance: %v %v %q", key, err, ok, v)
		}
	}

	// Moved keys live on the new shard's store and nowhere else.
	for _, key := range allMoving {
		if owner := ring.ShardString(key); owner != 3 {
			t.Fatalf("key %q owned by %d after grow, want 3", key, owner)
		}
		if _, _, ok := c.Part(3).Master.Store().Get([]byte(key)); !ok {
			t.Fatalf("moved key %q missing on target store", key)
		}
	}
	for from, keys := range moving {
		for _, key := range keys {
			if _, _, ok := c.Part(from).Master.Store().Get([]byte(key)); ok {
				t.Fatalf("moved key %q still on source shard %d", key, from)
			}
		}
	}

	// Every read flavor re-routes across the handoff, including the §A.3
	// stale read (whose redirect is a distinct code path) and the §A.1
	// nearby read (whose backup replica is fenced at the source).
	for _, key := range allMoving[:3] {
		if v, ok, err := cl.GetStale(ctx, []byte(key)); err != nil || !ok || string(v) != "v2-"+key {
			t.Fatalf("GetStale %q after rebalance: %v %v %q", key, err, ok, v)
		}
		if v, ok, err := cl.GetNearby(ctx, []byte(key)); err != nil || !ok || string(v) != "v2-"+key {
			t.Fatalf("GetNearby %q after rebalance: %v %v %q", key, err, ok, v)
		}
	}

	// Versions migrated: a conditional write against the pre-migration
	// version succeeds on the new owner.
	applied, ver, err := cl.CondPut(ctx, []byte(allMoving[0]), []byte("v3"), 2)
	if err != nil || !applied || ver != 3 {
		t.Fatalf("CondPut across migration: applied=%v ver=%d err=%v", applied, ver, err)
	}

	// Counters keep counting exactly-once across the handoff.
	if moved := ring.ShardString(counter) != ctrShard; moved {
		t.Logf("counter %q moved %d→%d", counter, ctrShard, ring.ShardString(counter))
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Increment(ctx, []byte(counter), 1); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := cl.Increment(ctx, []byte(counter), 0); err != nil || n != 10 {
		t.Fatalf("counter after migration = %d, %v, want 10", n, err)
	}

	// A fresh client routes by the new ring immediately.
	cl2 := testClient(t, c, "late")
	if cl2.NumShards() != 4 {
		t.Fatalf("fresh client covers %d shards", cl2.NumShards())
	}
	for _, key := range staying {
		if v, ok, err := cl2.Get(ctx, []byte(key)); err != nil || !ok || string(v) != "v2-"+key {
			t.Fatalf("fresh client get %q: %v %v %q", key, err, ok, v)
		}
	}
}

// TestRebalanceNoSpareIsNoop: Rebalance with no spare partitions returns
// immediately without touching the ring.
func TestRebalanceNoSpareIsNoop(t *testing.T) {
	c := startTestCluster(t, testOptions(2))
	if err := c.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r := c.CurrentRing(); r.Shards() != 2 || r.Epoch() != 0 {
		t.Fatalf("ring changed: %d shards epoch %d", r.Shards(), r.Epoch())
	}
}

// TestRebalanceMultiStep: two spares are absorbed one epoch per grow step.
func TestRebalanceMultiStep(t *testing.T) {
	c := startTestCluster(t, testOptions(2))
	cl := testClient(t, c, "app")
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := cl.Put(ctx, []byte(fmt.Sprintf("ms:%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := c.AddShard(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	if r := c.CurrentRing(); r.Shards() != 4 || r.Epoch() != 2 {
		t.Fatalf("ring after two grows: %d shards epoch %d", r.Shards(), r.Epoch())
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("ms:%d", i)
		if v, ok, err := cl.Get(ctx, []byte(key)); err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %q: %v %v %q", key, err, ok, v)
		}
	}
}

// TestCrashDuringMigration kills the source master at two protocol stages
// and asserts the moving range ends up on exactly one side — recovered at
// the source when the migration aborted, installed at the target when it
// committed — never both, and never lost.
func TestCrashDuringMigration(t *testing.T) {
	seed := func(t *testing.T, c *Cluster, cl *Client) (moving map[int][]string, all []string) {
		ctx := context.Background()
		moving, staying := movingKeys(c.CurrentRing(), "cr", 18)
		if len(moving) == 0 {
			t.Fatal("no moving keys found")
		}
		for _, keys := range moving {
			all = append(all, keys...)
		}
		all = append(all, staying...)
		for _, key := range all {
			if _, err := cl.Put(ctx, []byte(key), []byte("val-"+key)); err != nil {
				t.Fatal(err)
			}
		}
		return moving, all
	}
	// crashSource picks the source shard whose ranges move and crashes it
	// when the hook fires. With several sources contributing ranges, the
	// highest-numbered one is collected last, so a BeforeCollect crash
	// still exercises the abort of earlier sources' freezes.
	pickSource := func(moving map[int][]string) int {
		src := -1
		for s := range moving {
			if s > src {
				src = s
			}
		}
		return src
	}

	t.Run("abort-before-collect", func(t *testing.T) {
		c := startTestCluster(t, testOptions(3))
		cl := testClient(t, c, "app")
		ctx := context.Background()
		moving, all := seed(t, c, cl)
		src := pickSource(moving)

		if _, err := c.AddShard(); err != nil {
			t.Fatal(err)
		}
		c.Hooks.BeforeCollect = func(int) { c.CrashMaster(src) }
		if err := c.Rebalance(ctx); err == nil {
			t.Fatal("Rebalance succeeded despite a source crash before collect")
		}
		// The ring never flipped: the range stays with its sources.
		if r := c.CurrentRing(); r.Shards() != 3 || r.Epoch() != 0 {
			t.Fatalf("ring after aborted rebalance: %d shards epoch %d", r.Shards(), r.Epoch())
		}
		if err := c.Recover(src, "master2"); err != nil {
			t.Fatalf("recover source: %v", err)
		}
		// Every key — including the crashed source's moving range — is
		// recovered at its ORIGINAL shard; the target holds nothing.
		for _, key := range all {
			cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			v, ok, err := cl.Get(cctx, []byte(key))
			cancel()
			if err != nil || !ok || string(v) != "val-"+key {
				t.Fatalf("key %q after aborted migration: %v %v %q", key, err, ok, v)
			}
		}
		if n := c.Part(3).Master.Store().Len(); n != 0 {
			t.Fatalf("target store holds %d objects after aborted migration", n)
		}
	})

	t.Run("recover-during-step", func(t *testing.T) {
		// The nastiest interleaving: the source crashes mid-step and an
		// operator recovers it BEFORE the step commits. The coordinator's
		// freeze record (written before collect) keeps the replacement
		// master's ranges frozen, so it cannot accept writes that the
		// committing step would silently strand — no split-brain.
		c := startTestCluster(t, testOptions(3))
		cl := testClient(t, c, "app")
		ctx := context.Background()
		moving, all := seed(t, c, cl)
		src := pickSource(moving)

		if _, err := c.AddShard(); err != nil {
			t.Fatal(err)
		}
		c.Hooks.AfterCollect = func(int) {
			c.CrashMaster(src)
			if err := c.Recover(src, "master2"); err != nil {
				t.Errorf("recover source mid-step: %v", err)
			}
		}
		err := c.Rebalance(ctx)
		// The step commits regardless (its bundle was exported before the
		// crash); only the source-side cleanup may be left to recovery.
		if r := c.CurrentRing(); r.Shards() != 4 || r.Epoch() != 1 {
			t.Fatalf("ring after mid-step recovery: %d shards epoch %d (err=%v)", r.Shards(), r.Epoch(), err)
		}
		// Every key is served correctly through the routing client, and
		// writes to moved keys land on the target, not the recovered
		// source.
		probe := moving[src][0]
		cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		if _, err := cl.Put(cctx, []byte(probe), []byte("post-recovery")); err != nil {
			t.Fatalf("put %q after mid-step recovery: %v", probe, err)
		}
		cancel()
		if v, _, ok := c.Part(3).Master.Store().Get([]byte(probe)); !ok || string(v) != "post-recovery" {
			t.Fatalf("post-recovery write landed off-target: %q ok=%v", v, ok)
		}
		for _, key := range all {
			want := "val-" + key
			if key == probe {
				want = "post-recovery"
			}
			cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			v, ok, err := cl.Get(cctx, []byte(key))
			cancel()
			if err != nil || !ok || string(v) != want {
				t.Fatalf("key %q after mid-step recovery: %v %v %q", key, err, ok, v)
			}
		}
	})

	t.Run("commit-after-collect", func(t *testing.T) {
		c := startTestCluster(t, testOptions(3))
		cl := testClient(t, c, "app")
		ctx := context.Background()
		moving, all := seed(t, c, cl)
		src := pickSource(moving)

		if _, err := c.AddShard(); err != nil {
			t.Fatal(err)
		}
		// The source dies after exporting its ranges: collect already
		// drained them to its backups AND handed them to the driver, so
		// the migration commits; only the source's local cleanup is left
		// to its recovery.
		c.Hooks.AfterCollect = func(int) { c.CrashMaster(src) }
		err := c.Rebalance(ctx)
		if r := c.CurrentRing(); r.Shards() != 4 || r.Epoch() != 1 {
			t.Fatalf("ring after committed rebalance: %d shards epoch %d (err=%v)", r.Shards(), r.Epoch(), err)
		}
		if err := c.Recover(src, "master2"); err != nil {
			t.Fatalf("recover source: %v", err)
		}
		// Exactly one side serves each moved key: the target's store has
		// it, the recovered source's does not (its recovery applied the
		// coordinator's moved-range record, dropping restored objects and
		// skipping witness replays for the range).
		for _, keys := range moving {
			for _, key := range keys {
				if _, _, ok := c.Part(3).Master.Store().Get([]byte(key)); !ok {
					t.Fatalf("moved key %q missing on target after commit", key)
				}
			}
		}
		for _, key := range moving[src] {
			if _, _, ok := c.Part(src).Master.Store().Get([]byte(key)); ok {
				t.Fatalf("moved key %q resurrected on recovered source %d", key, src)
			}
		}
		// And every key reads back correctly through the routing client.
		for _, key := range all {
			cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			v, ok, err := cl.Get(cctx, []byte(key))
			cancel()
			if err != nil || !ok || string(v) != "val-"+key {
				t.Fatalf("key %q after committed migration: %v %v %q", key, err, ok, v)
			}
		}
	})
}

// shrinkingKeys returns test keys the leaving shard hands off when cur
// shrinks one shard, mapped target shard → keys, plus keys that stay put.
// Every moving key is owned by the highest shard under cur — the dual of
// the grow case, where every moving key is owned by the new shard after.
func shrinkingKeys(t *testing.T, cur *Ring, prefix string, want int) (moving map[int][]string, staying []string) {
	t.Helper()
	shrunk, err := cur.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	leaving := cur.Shards() - 1
	moving = make(map[int][]string)
	total := 0
	for i := 0; total < want && i < 100000; i++ {
		key := fmt.Sprintf("%s:%d", prefix, i)
		if from, to := cur.ShardString(key), shrunk.ShardString(key); from != to {
			if from != leaving {
				t.Fatalf("shrink moves key %q from shard %d, want only %d", key, from, leaving)
			}
			moving[to] = append(moving[to], key)
			total++
		} else if len(staying) < want {
			staying = append(staying, key)
		}
	}
	return moving, staying
}

// TestRemoveShardDrainsKeys: RemoveShard live-migrates the highest shard's
// key ranges back to the survivors (fanning out to many targets — the dual
// of a grow step), publishes the shrunk ring, and retires the drained
// partition. Values, versions, and counters survive; a client opened before
// the drain re-routes through the redirect path.
func TestRemoveShardDrainsKeys(t *testing.T) {
	c := startTestCluster(t, testOptions(4))
	cl := testClient(t, c, "app")
	ctx := context.Background()

	cur := c.CurrentRing()
	leaving := cur.Shards() - 1
	moving, staying := shrinkingKeys(t, cur, "drain", 24)
	if len(moving) < 2 {
		t.Fatalf("shrink fans out to %d targets, want several", len(moving))
	}
	var allMoving []string
	for _, keys := range moving {
		allMoving = append(allMoving, keys...)
	}

	// Seed state the drain must carry: plain values (two writes, so
	// versions reach 2), a counter on the leaving shard, untouched keys.
	for _, key := range append(append([]string(nil), allMoving...), staying...) {
		if _, err := cl.Put(ctx, []byte(key), []byte("v1-"+key)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Put(ctx, []byte(key), []byte("v2-"+key)); err != nil {
			t.Fatal(err)
		}
	}
	var counter string
	for i := 0; ; i++ {
		counter = fmt.Sprintf("drainctr:%d", i)
		if cur.ShardString(counter) == leaving {
			break
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Increment(ctx, []byte(counter), 1); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.RemoveShard(ctx); err != nil {
		t.Fatalf("RemoveShard: %v", err)
	}
	ring := c.CurrentRing()
	if ring.Shards() != 3 || ring.Epoch() != 1 {
		t.Fatalf("ring after drain: %d shards epoch %d", ring.Shards(), ring.Epoch())
	}
	if n := c.NumShards(); n != 3 {
		t.Fatalf("NumShards after drain = %d, want 3", n)
	}

	// The pre-drain client reads every key back (bounced operations
	// re-route to the survivors) and sees the latest values.
	for _, key := range append(append([]string(nil), allMoving...), staying...) {
		v, ok, err := cl.Get(ctx, []byte(key))
		if err != nil || !ok || string(v) != "v2-"+key {
			t.Fatalf("get %q after drain: %v %v %q", key, err, ok, v)
		}
	}

	// Each drained key landed on exactly the survivor the shrunk ring
	// names.
	for to, keys := range moving {
		for _, key := range keys {
			if owner := ring.ShardString(key); owner != to {
				t.Fatalf("key %q owned by %d after shrink, want %d", key, owner, to)
			}
			if _, _, ok := c.Part(to).Master.Store().Get([]byte(key)); !ok {
				t.Fatalf("drained key %q missing on survivor %d", key, to)
			}
		}
	}

	// Versions migrated: a conditional write against the pre-drain
	// version succeeds on the new owner.
	applied, ver, err := cl.CondPut(ctx, []byte(allMoving[0]), []byte("v3"), 2)
	if err != nil || !applied || ver != 3 {
		t.Fatalf("CondPut across drain: applied=%v ver=%d err=%v", applied, ver, err)
	}

	// The counter keeps counting exactly-once on its survivor.
	for i := 0; i < 5; i++ {
		if _, err := cl.Increment(ctx, []byte(counter), 1); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := cl.Increment(ctx, []byte(counter), 0); err != nil || n != 10 {
		t.Fatalf("counter after drain = %d, %v, want 10", n, err)
	}

	// A fresh client covers only the survivors.
	cl2 := testClient(t, c, "late")
	if cl2.NumShards() != 3 {
		t.Fatalf("fresh client covers %d shards", cl2.NumShards())
	}
	for _, key := range allMoving[:3] {
		if v, ok, err := cl2.Get(ctx, []byte(key)); err != nil || !ok || string(v) != "v3" && string(v) != "v2-"+key {
			t.Fatalf("fresh client get %q: %v %v %q", key, err, ok, v)
		}
	}

	// Grow-then-shrink round trip: adding a shard back restores the
	// pre-drain mapping exactly (the mapping is a pure function of the
	// shard count), at a higher epoch.
	if s, err := c.AddShard(); err != nil || s != 3 {
		t.Fatalf("AddShard after drain = %d, %v", s, err)
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance after drain: %v", err)
	}
	regrown := c.CurrentRing()
	if regrown.Shards() != 4 || regrown.Epoch() != 2 {
		t.Fatalf("ring after regrow: %d shards epoch %d", regrown.Shards(), regrown.Epoch())
	}
	// cl2 was opened on the 3-shard ring: reading a key the regrow moved
	// exercises the refresh path that dials the newly covered shard.
	for _, key := range allMoving[:3] {
		if owner := regrown.ShardString(key); owner != leaving {
			t.Fatalf("key %q owned by %d after regrow, want %d", key, owner, leaving)
		}
		if v, ok, err := cl2.Get(ctx, []byte(key)); err != nil || !ok || len(v) == 0 {
			t.Fatalf("get %q after regrow: %v %v", key, err, ok)
		}
	}
}

// TestRemoveShardRejectsSpare: a partition not covered by the ring blocks
// RemoveShard — the operator must Rebalance onto it (or retire it by other
// means) first, otherwise the drained shard's data would land partly on a
// partition the ring never routes to.
func TestRemoveShardRejectsSpare(t *testing.T) {
	c := startTestCluster(t, testOptions(2))
	ctx := context.Background()
	if _, err := c.AddShard(); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveShard(ctx); err == nil {
		t.Fatal("RemoveShard with an uncovered spare succeeded, want error")
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveShard(ctx); err != nil {
		t.Fatalf("RemoveShard after rebalance: %v", err)
	}
	if got := c.CurrentRing().Shards(); got != 2 {
		t.Fatalf("shards after drain = %d, want 2", got)
	}
}
