package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"curp/internal/cluster"
	"curp/internal/core"
	"curp/internal/kv"
)

// Future is the handle to an asynchronous operation routed across shards.
// It resolves once the operation is durable on its owning shard(s) — even
// if the owner changed mid-flight — or has failed for good.
type Future struct {
	done chan struct{}
	res  *kv.Result
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) complete(res *kv.Result) {
	f.res = res
	close(f.done)
}

func (f *Future) fail(err error) {
	f.err = err
	close(f.done)
}

// Wait blocks until the operation completes and returns its result. If
// ctx ends first Wait returns ctx's error; the operation keeps running and
// a later Wait can still observe its outcome.
func (f *Future) Wait(ctx context.Context) (*kv.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.done:
		return f.res, f.err
	}
}

// submitAsync runs one single-key command asynchronously with the same
// redirect handling as the blocking verbs: a bounced command refreshes the
// ring and re-issues against the new owner.
func (c *Client) submitAsync(ctx context.Context, key []byte, cmd *kv.Command) *Future {
	f := newFuture()
	go func() {
		var res *kv.Result
		err := c.do(ctx, key, func(sc *cluster.Client) error {
			r, err := sc.Submit(ctx, cmd)
			res = r
			return err
		})
		if err != nil {
			f.fail(err)
			return
		}
		f.complete(res)
	}()
	return f
}

// PutAsync writes value under key on its owning shard without blocking.
func (c *Client) PutAsync(ctx context.Context, key, value []byte) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpPut, Key: key, Value: value})
}

// DeleteAsync removes key on its owning shard without blocking.
func (c *Client) DeleteAsync(ctx context.Context, key []byte) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpDelete, Key: key})
}

// IncrementAsync adds delta to the counter at key without blocking.
func (c *Client) IncrementAsync(ctx context.Context, key []byte, delta int64) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpIncrement, Key: key, Delta: delta})
}

// CondPutAsync conditionally writes value at expectVersion without
// blocking.
func (c *Client) CondPutAsync(ctx context.Context, key, value []byte, expectVersion uint64) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpCondPut, Key: key, Value: value, ExpectVersion: expectVersion})
}

// AppendAsync appends suffix to the value at key without blocking; the
// future's counter result is the value's new total length.
func (c *Client) AppendAsync(ctx context.Context, key, suffix []byte) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpAppend, Key: key, Value: suffix})
}

// PutTTLAsync writes value under key with an absolute UnixNano expiry
// without blocking.
func (c *Client) PutTTLAsync(ctx context.Context, key, value []byte, expireAt int64) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpPut, Key: key, Value: value, ExpireAt: expireAt})
}

// SetAddAsync adds member to the set at key without blocking.
func (c *Client) SetAddAsync(ctx context.Context, key, member []byte) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpSetAdd, Key: key, Value: member})
}

// SetRemoveAsync removes member from the set at key without blocking.
func (c *Client) SetRemoveAsync(ctx context.Context, key, member []byte) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpSetRemove, Key: key, Value: member})
}

// BucketTakeAsync takes n tokens from the bucket at key without blocking;
// the future's Granted reports whether the tokens were available.
func (c *Client) BucketTakeAsync(ctx context.Context, key []byte, n int64) *Future {
	return c.submitAsync(ctx, key, &kv.Command{Op: kv.OpBucketTake, Key: key, Delta: n})
}

// MultiPutAsync writes the pairs without blocking — atomic per shard, not
// across shards (the blocking MultiPut's contract).
func (c *Client) MultiPutAsync(ctx context.Context, pairs []kv.KV) *Future {
	f := newFuture()
	go func() {
		if err := c.MultiPut(ctx, pairs); err != nil {
			f.fail(err)
			return
		}
		f.complete(&kv.Result{})
	}()
	return f
}

// MultiIncrementAsync applies the deltas without blocking — atomic and
// exactly-once per shard, independent across shards. The future's result
// Values carry the new counter values in decimal, aligned with deltas.
func (c *Client) MultiIncrementAsync(ctx context.Context, deltas []kv.IncrPair) *Future {
	f := newFuture()
	go func() {
		vals, err := c.MultiIncrement(ctx, deltas)
		if err != nil {
			f.fail(err)
			return
		}
		f.complete(&kv.Result{Values: encodeCounters(vals)})
	}()
	return f
}

func encodeCounters(vals []int64) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = []byte(strconv.FormatInt(v, 10))
	}
	return out
}

// pipeOp is one queued pipeline operation. Single-key operations carry
// their command directly; multi-key operations carry legs that are
// regrouped by owning shard at every flush attempt (a rebalance between
// attempts may move legs between shards).
type pipeOp struct {
	fut *Future
	op  kv.CommandOp

	// Single-key operations.
	key []byte
	cmd *kv.Command

	// Multi-key operations: exactly one of pairs/incrs is set; legDone and
	// legVal are per leg.
	pairs       []kv.KV
	incrs       []kv.IncrPair
	legDone     []bool
	legVal      [][]byte
	outstanding int
	failed      error
}

func (op *pipeOp) legKey(i int) []byte {
	if op.pairs != nil {
		return op.pairs[i].Key
	}
	return op.incrs[i].Key
}

func (op *pipeOp) legs() int {
	if op.pairs != nil {
		return len(op.pairs)
	}
	return len(op.incrs)
}

// Pipeline queues update operations against a sharded deployment and
// flushes them scatter/gather: operations are grouped by owning shard
// under the current ring, every shard's group is submitted as ONE
// coalesced batch (one UpdateBatch RPC to that shard's master, one
// RecordBatch per witness), and the groups fly in parallel. Sub-
// operations bounced by a live migration (core.ErrKeyMoved) are regrouped
// under a refreshed ring and re-issued — with fresh RIFL IDs, which is
// safe because a bounced operation never executed and its witness records
// were retracted — so a pipeline survives a Rebalance; completed
// sub-operations are never re-sent.
//
// Queue order is preserved per shard group, so two operations on the same
// key apply in the order they were queued. Multi-key operations keep the
// routed client's cross-shard contract: atomic and exactly-once per
// shard, independent across shards.
//
// A Pipeline is not safe for concurrent use; open one per goroutine
// (futures may be waited on from anywhere).
type Pipeline struct {
	c   *Client
	ops []*pipeOp
}

// NewPipeline opens an empty pipeline.
func (c *Client) NewPipeline() *Pipeline { return &Pipeline{c: c} }

// Len reports how many operations are queued and unflushed.
func (p *Pipeline) Len() int { return len(p.ops) }

func (p *Pipeline) enqueue(op *pipeOp) *Future {
	op.fut = newFuture()
	if op.cmd != nil {
		op.outstanding = 1
	} else {
		op.outstanding = op.legs()
		op.legDone = make([]bool, op.legs())
		op.legVal = make([][]byte, op.legs())
	}
	p.ops = append(p.ops, op)
	return op.fut
}

// Put queues a write of value under key.
func (p *Pipeline) Put(key, value []byte) *Future {
	return p.enqueue(&pipeOp{op: kv.OpPut, key: key, cmd: &kv.Command{Op: kv.OpPut, Key: key, Value: value}})
}

// Delete queues a removal of key.
func (p *Pipeline) Delete(key []byte) *Future {
	return p.enqueue(&pipeOp{op: kv.OpDelete, key: key, cmd: &kv.Command{Op: kv.OpDelete, Key: key}})
}

// Increment queues adding delta to the counter at key.
func (p *Pipeline) Increment(key []byte, delta int64) *Future {
	return p.enqueue(&pipeOp{op: kv.OpIncrement, key: key, cmd: &kv.Command{Op: kv.OpIncrement, Key: key, Delta: delta}})
}

// CondPut queues a conditional write of value at expectVersion.
func (p *Pipeline) CondPut(key, value []byte, expectVersion uint64) *Future {
	return p.enqueue(&pipeOp{op: kv.OpCondPut, key: key, cmd: &kv.Command{Op: kv.OpCondPut, Key: key, Value: value, ExpectVersion: expectVersion}})
}

// Append queues appending suffix to the value at key.
func (p *Pipeline) Append(key, suffix []byte) *Future {
	return p.enqueue(&pipeOp{op: kv.OpAppend, key: key, cmd: &kv.Command{Op: kv.OpAppend, Key: key, Value: suffix}})
}

// PutTTL queues a write of value under key with an absolute UnixNano
// expiry.
func (p *Pipeline) PutTTL(key, value []byte, expireAt int64) *Future {
	return p.enqueue(&pipeOp{op: kv.OpPut, key: key, cmd: &kv.Command{Op: kv.OpPut, Key: key, Value: value, ExpireAt: expireAt}})
}

// SetAdd queues adding member to the set at key.
func (p *Pipeline) SetAdd(key, member []byte) *Future {
	return p.enqueue(&pipeOp{op: kv.OpSetAdd, key: key, cmd: &kv.Command{Op: kv.OpSetAdd, Key: key, Value: member}})
}

// SetRemove queues removing member from the set at key.
func (p *Pipeline) SetRemove(key, member []byte) *Future {
	return p.enqueue(&pipeOp{op: kv.OpSetRemove, key: key, cmd: &kv.Command{Op: kv.OpSetRemove, Key: key, Value: member}})
}

// BucketTake queues taking n tokens from the bucket at key.
func (p *Pipeline) BucketTake(key []byte, n int64) *Future {
	return p.enqueue(&pipeOp{op: kv.OpBucketTake, key: key, cmd: &kv.Command{Op: kv.OpBucketTake, Key: key, Delta: n}})
}

// MultiPut queues an atomic-per-shard multi-object write.
func (p *Pipeline) MultiPut(pairs []kv.KV) *Future {
	return p.enqueue(&pipeOp{op: kv.OpMultiPut, pairs: pairs})
}

// MultiIncrement queues an atomic-per-shard multi-counter increment.
func (p *Pipeline) MultiIncrement(deltas []kv.IncrPair) *Future {
	return p.enqueue(&pipeOp{op: kv.OpMultiIncr, incrs: deltas})
}

// segment is the part of one operation going to one shard in one flush
// attempt: the whole operation for single-key commands, a subset of legs
// for multi-key commands.
type segment struct {
	op      *pipeOp
	legIdxs []int // nil for single-key operations
	cmd     *kv.Command
}

// buildCmd materializes the segment's shard-atomic sub-command.
func (s *segment) buildCmd() {
	if s.op.cmd != nil {
		s.cmd = s.op.cmd
		return
	}
	cmd := &kv.Command{Op: s.op.op}
	for _, i := range s.legIdxs {
		if s.op.pairs != nil {
			cmd.Pairs = append(cmd.Pairs, s.op.pairs[i])
		} else {
			d := s.op.incrs[i]
			cmd.Pairs = append(cmd.Pairs, kv.KV{Key: d.Key, Value: []byte(strconv.FormatInt(d.Delta, 10))})
		}
	}
	s.cmd = cmd
}

// credit applies a successful segment result to its operation and
// completes the future when the operation has no outstanding work left.
func (s *segment) credit(res *kv.Result) {
	op := s.op
	if op.cmd != nil {
		op.outstanding = 0
		op.fut.complete(res)
		return
	}
	for j, i := range s.legIdxs {
		if op.legDone[i] {
			continue
		}
		op.legDone[i] = true
		op.outstanding--
		if op.incrs != nil && j < len(res.Values) {
			op.legVal[i] = res.Values[j]
		}
	}
	if op.outstanding == 0 && op.failed == nil {
		if op.incrs != nil {
			op.fut.complete(&kv.Result{Values: op.legVal})
		} else {
			op.fut.complete(&kv.Result{})
		}
	}
}

// Flush submits every queued operation, scatter/gathered per shard, and
// blocks until each has completed or failed. Per-operation outcomes land
// on the futures; Flush returns the join of all failures. The queue is
// empty afterwards, so the pipeline can be reused; operations queued
// after a Flush are ordered after the flushed ones.
func (p *Pipeline) Flush(ctx context.Context) error {
	ops := p.ops
	p.ops = nil
	if len(ops) == 0 {
		return nil
	}
	var deadline time.Time
	for attempt := 0; ; attempt++ {
		ring, shards := p.c.snapshot()

		// Scatter: group outstanding work by owning shard, preserving
		// queue order within each group. A multi-key operation contributes
		// at most one shard-atomic segment per shard.
		shardSegs := make(map[int][]*segment)
		pending := 0
		for _, op := range ops {
			if op.failed != nil || op.outstanding == 0 {
				continue
			}
			if op.cmd != nil {
				s := ring.Shard(op.key)
				shardSegs[s] = append(shardSegs[s], &segment{op: op, cmd: op.cmd})
				pending++
				continue
			}
			segByShard := make(map[int]*segment)
			for i := 0; i < op.legs(); i++ {
				if op.legDone[i] {
					continue
				}
				s := ring.Shard(op.legKey(i))
				seg := segByShard[s]
				if seg == nil {
					seg = &segment{op: op}
					segByShard[s] = seg
					shardSegs[s] = append(shardSegs[s], seg)
					pending++
				}
				seg.legIdxs = append(seg.legIdxs, i)
			}
			for _, seg := range segByShard {
				seg.buildCmd()
			}
		}
		if pending == 0 {
			break
		}

		// Submit every shard's group as one coalesced batch; submissions
		// are asynchronous, so the groups fly in parallel.
		type issued struct {
			seg *segment
			fut *cluster.Future
		}
		var all []issued
		for s, segs := range shardSegs {
			cmds := make([]*kv.Command, len(segs))
			for i, seg := range segs {
				cmds[i] = seg.cmd
			}
			futs := shards[s].SubmitBatch(ctx, cmds)
			for i, seg := range segs {
				all = append(all, issued{seg: seg, fut: futs[i]})
			}
		}

		// Gather.
		movedAny := false
		for _, iss := range all {
			res, err := iss.fut.Wait(ctx)
			switch {
			case err == nil:
				iss.seg.credit(res)
			case errors.Is(err, core.ErrKeyMoved):
				movedAny = true // segment's legs stay outstanding; regroup
			default:
				if iss.seg.op.failed == nil {
					iss.seg.op.failed = err
				}
			}
		}
		if !movedAny {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(maxRedirectWait)
		} else if time.Now().After(deadline) {
			for _, op := range ops {
				if op.failed == nil && op.outstanding > 0 {
					op.failed = fmt.Errorf("shard: pipeline op still moving after %v (%d redirects): %w", maxRedirectWait, attempt, core.ErrKeyMoved)
				}
			}
			break
		}
		if !p.c.refreshRing() {
			// Same ring: the ranges are mid-transfer. Wait for the flip.
			if perr := pauseRedirect(ctx, attempt); perr != nil {
				for _, op := range ops {
					if op.failed == nil && op.outstanding > 0 {
						op.failed = perr
					}
				}
				break
			}
		}
	}

	// Resolve failures (successes completed eagerly in credit).
	var errs []error
	for i, op := range ops {
		if op.failed == nil && op.outstanding > 0 {
			op.failed = ctx.Err()
			if op.failed == nil {
				op.failed = fmt.Errorf("shard: pipeline op %d incomplete", i)
			}
		}
		if op.failed != nil {
			op.fut.fail(op.failed)
			errs = append(errs, fmt.Errorf("op %d (%v): %w", i, op.op, op.failed))
		}
	}
	return errors.Join(errs...)
}
