package shard

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"curp/internal/cluster"
	"curp/internal/transport"
	"curp/internal/witness"
)

// freeAddrs reserves n distinct loopback TCP addresses by binding and
// releasing ephemeral ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range listeners {
		l.Close()
	}
	return addrs
}

// tcpPartition boots one partition over real TCP the way cmd/curpd does
// (coordinator + master + backup + witness as separate listeners).
func tcpPartition(t *testing.T, nw transport.Network, shardIdx int, addrs []string) *cluster.Cluster {
	t.Helper()
	coord, err := cluster.NewCoordinator(nw, addrs[0], time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetClientIDNamespace(cluster.ClientIDNamespaceFor(shardIdx))
	b, err := cluster.NewBackupServer(nw, addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	w, err := cluster.NewWitnessServer(nw, addrs[2], witness.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := cluster.DefaultMasterOptions()
	ms, err := cluster.NewMasterServer(nw, 1, addrs[3], 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.AddMaster(ms, []string{b.Addr()}, []string{w.Addr()}); err != nil {
		t.Fatal(err)
	}
	c := &cluster.Cluster{Net: nw, Coord: coord, Master: ms,
		Backups: []*cluster.BackupServer{b}, Witnesses: []*cluster.WitnessServer{w}}
	t.Cleanup(c.Close)
	return c
}

// TestRebalanceEndpointsTCP is the end-to-end curpctl path: four real-TCP
// partitions, a 3-shard routing ring, and RebalanceEndpoints (exactly what
// `curpctl rebalance 3 4` runs) growing the ring live. Keys written before
// the rebalance read back afterwards through the 4-shard ring, with the
// moved ones served by the new shard.
func TestRebalanceEndpointsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP listeners; skipped in -short")
	}
	nw := transport.TCPNetwork{}
	const parts = 4
	coords := make([]string, parts)
	for i := 0; i < parts; i++ {
		addrs := freeAddrs(t, 4)
		p := tcpPartition(t, nw, i, addrs)
		coords[i] = p.Coord.Addr()
	}

	dial := func(ring *Ring, name string) *Client {
		t.Helper()
		shards := make([]*cluster.Client, ring.Shards())
		for s := range shards {
			cl, err := cluster.NewClient(nw, name, coords[s], 1)
			if err != nil {
				t.Fatal(err)
			}
			shards[s] = cl
		}
		rc, err := NewRoutedClient(ring, shards)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rc.Close)
		return rc
	}

	from := MustNewRing(3, 0)
	to := MustNewRing(4, 0)
	before := dial(from, "writer")
	ctx := context.Background()
	const n = 60
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("tcp:%d", i))
		if _, err := before.Put(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	md := &cluster.MigrationDriver{NW: nw, Self: "curpctl-test"}
	got, err := RebalanceEndpoints(ctx, md, coords, from, to)
	if err != nil {
		t.Fatalf("RebalanceEndpoints: %v", err)
	}
	if got.Shards() != 4 || got.Epoch() != 1 {
		t.Fatalf("rebalanced ring: %d shards epoch %d", got.Shards(), got.Epoch())
	}

	after := dial(got, "reader")
	moved := 0
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("tcp:%d", i))
		if from.Shard(key) != got.Shard(key) {
			moved++
		}
		v, ok, err := after.Get(ctx, key)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %q through grown ring: %v %v %q", key, err, ok, v)
		}
	}
	if moved == 0 {
		t.Fatal("rebalance moved no test keys; widen the key set")
	}
	t.Logf("moved %d/%d keys onto the new shard over TCP", moved, n)
}
