package shard

import (
	"fmt"
	"testing"

	"curp/internal/witness"
)

// mixedPoint is the ring position of a string key, as migration ranges see
// it.
func mixedPoint(key string) uint64 { return witness.RingPointString(key) }

// TestRingDeterministic: the key→shard mapping is a pure function of the
// configuration — two rings built alike agree on every key, repeatedly, and
// the byte/string lookups agree with each other.
func TestRingDeterministic(t *testing.T) {
	a := MustNewRing(8, 0)
	b := MustNewRing(8, 0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("user:%d", i)
		sa := a.Shard([]byte(key))
		if sa < 0 || sa >= 8 {
			t.Fatalf("shard out of range: %d", sa)
		}
		if sb := b.Shard([]byte(key)); sb != sa {
			t.Fatalf("rings disagree on %q: %d vs %d", key, sa, sb)
		}
		if ss := a.ShardString(key); ss != sa {
			t.Fatalf("ShardString(%q) = %d, Shard = %d", key, ss, sa)
		}
		if again := a.Shard([]byte(key)); again != sa {
			t.Fatalf("mapping unstable for %q: %d then %d", key, sa, again)
		}
	}
}

// TestRingBalance: with the default virtual-node count, a large uniform key
// population spreads evenly. The chi-squared statistic over shard counts
// stays far below the blow-up that would signal a broken hash (for 7
// degrees of freedom the 99.9th percentile is ≈24.3; a lost shard or a
// constant hash scores in the thousands), and no shard is more than 2× or
// less than ½× its fair share.
func TestRingBalance(t *testing.T) {
	const shards = 8
	const keys = 40000
	r := MustNewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.ShardString(fmt.Sprintf("key-%d", i))]++
	}
	expected := float64(keys) / shards
	chi2 := 0.0
	for s, n := range counts {
		d := float64(n) - expected
		chi2 += d * d / expected
		if float64(n) > 2*expected || float64(n) < expected/2 {
			t.Fatalf("shard %d holds %d keys, fair share %.0f: %v", s, n, expected, counts)
		}
	}
	// Virtual-node arcs are not perfectly uniform, so allow slack beyond
	// the i.i.d. bound — but stay orders of magnitude under failure modes.
	if chi2 > 200 {
		t.Fatalf("chi-squared = %.1f (counts %v), distribution too skewed", chi2, counts)
	}
}

// TestRingRemapFraction: growing the ring from N to N+1 shards moves only
// ≈1/(N+1) of the keys — the consistent-hashing property rebalancing will
// rely on — and every moved key lands on the new shard.
func TestRingRemapFraction(t *testing.T) {
	const keys = 40000
	for _, n := range []int{4, 8} {
		old := MustNewRing(n, 0)
		grown := MustNewRing(n+1, 0)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			before, after := old.ShardString(key), grown.ShardString(key)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("key %q moved from %d to %d, not to the new shard %d", key, before, after, n)
				}
			}
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Fatalf("grow %d→%d moved %.3f of keys, want ≈%.3f", n, n+1, frac, ideal)
		}
	}
}

// TestRingGrowShrinkRoundTrip: adding a shard and then removing it
// restores the previous key→shard mapping exactly — the mapping is a pure
// function of (shards, vnodes), independent of the epoch — while the epoch
// increases monotonically through both reconfigurations.
func TestRingGrowShrinkRoundTrip(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 3, 8} {
		base := MustNewRing(n, 0)
		grown := base.Grow()
		shrunk, err := grown.Shrink()
		if err != nil {
			t.Fatalf("shrink %d-shard ring: %v", grown.Shards(), err)
		}
		if base.Epoch() != 0 || grown.Epoch() != 1 || shrunk.Epoch() != 2 {
			t.Fatalf("epochs = %d,%d,%d, want 0,1,2", base.Epoch(), grown.Epoch(), shrunk.Epoch())
		}
		if grown.Shards() != n+1 || shrunk.Shards() != n {
			t.Fatalf("shard counts = %d,%d, want %d,%d", grown.Shards(), shrunk.Shards(), n+1, n)
		}
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("rt:%d", i)
			if before, after := base.ShardString(key), shrunk.ShardString(key); before != after {
				t.Fatalf("n=%d: grow+shrink moved %q from %d to %d", n, key, before, after)
			}
		}
	}
}

// TestRingShrinkRejectsLastShard: a one-shard ring cannot shrink.
func TestRingShrinkRejectsLastShard(t *testing.T) {
	if _, err := MustNewRing(1, 0).Shrink(); err == nil {
		t.Fatal("Shrink on a 1-shard ring succeeded")
	}
}

// TestRingGrowRemapFraction: Grow preserves the consistent-hashing remap
// bound — ≈1/(N+1) of keys move, all onto the new shard — and composing
// Grow steps keeps every intermediate epoch distinct.
func TestRingGrowRemapFraction(t *testing.T) {
	const keys = 40000
	for _, n := range []int{4, 8} {
		old := MustNewRing(n, 0)
		grown := old.Grow()
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			before, after := old.ShardString(key), grown.ShardString(key)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("key %q moved from %d to %d, not to the new shard %d", key, before, after, n)
				}
			}
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Fatalf("grow %d→%d moved %.3f of keys, want ≈%.3f", n, n+1, frac, ideal)
		}
	}
}

// TestMovesBetweenExact: the ranges MovesBetween reports are exactly the
// keys whose owner changes — every remapped key's ring position lies in
// the (old owner → new owner) move's ranges, and no stationary key's
// position lies in any range.
func TestMovesBetweenExact(t *testing.T) {
	old := MustNewRing(5, 0)
	grown := old.Grow()
	moves := MovesBetween(old, grown)
	if len(moves) == 0 {
		t.Fatal("grow produced no moves")
	}
	type pair struct{ from, to int }
	byPair := make(map[pair]Move)
	for _, m := range moves {
		if m.To != grown.Shards()-1 {
			t.Fatalf("move %d→%d: grow must only move keys to the new shard", m.From, m.To)
		}
		byPair[pair{m.From, m.To}] = m
	}
	contains := func(m Move, key string) bool {
		p := mixedPoint(key)
		for _, r := range m.Ranges {
			if r.Contains(p) {
				return true
			}
		}
		return false
	}
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("mb:%d", i)
		before, after := old.ShardString(key), grown.ShardString(key)
		if before != after {
			m, ok := byPair[pair{before, after}]
			if !ok || !contains(m, key) {
				t.Fatalf("key %q moved %d→%d but no reported range covers it", key, before, after)
			}
			continue
		}
		for _, m := range moves {
			if contains(m, key) {
				t.Fatalf("stationary key %q (shard %d) lies in reported range %d→%d", key, before, m.From, m.To)
			}
		}
	}
}

// TestRingRejectsZeroShards: the one invalid configuration errors instead
// of panicking in lookup.
func TestRingRejectsZeroShards(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-3, 16); err == nil {
		t.Fatal("NewRing(-3) succeeded")
	}
}
