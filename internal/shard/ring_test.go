package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the key→shard mapping is a pure function of the
// configuration — two rings built alike agree on every key, repeatedly, and
// the byte/string lookups agree with each other.
func TestRingDeterministic(t *testing.T) {
	a := MustNewRing(8, 0)
	b := MustNewRing(8, 0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("user:%d", i)
		sa := a.Shard([]byte(key))
		if sa < 0 || sa >= 8 {
			t.Fatalf("shard out of range: %d", sa)
		}
		if sb := b.Shard([]byte(key)); sb != sa {
			t.Fatalf("rings disagree on %q: %d vs %d", key, sa, sb)
		}
		if ss := a.ShardString(key); ss != sa {
			t.Fatalf("ShardString(%q) = %d, Shard = %d", key, ss, sa)
		}
		if again := a.Shard([]byte(key)); again != sa {
			t.Fatalf("mapping unstable for %q: %d then %d", key, sa, again)
		}
	}
}

// TestRingBalance: with the default virtual-node count, a large uniform key
// population spreads evenly. The chi-squared statistic over shard counts
// stays far below the blow-up that would signal a broken hash (for 7
// degrees of freedom the 99.9th percentile is ≈24.3; a lost shard or a
// constant hash scores in the thousands), and no shard is more than 2× or
// less than ½× its fair share.
func TestRingBalance(t *testing.T) {
	const shards = 8
	const keys = 40000
	r := MustNewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.ShardString(fmt.Sprintf("key-%d", i))]++
	}
	expected := float64(keys) / shards
	chi2 := 0.0
	for s, n := range counts {
		d := float64(n) - expected
		chi2 += d * d / expected
		if float64(n) > 2*expected || float64(n) < expected/2 {
			t.Fatalf("shard %d holds %d keys, fair share %.0f: %v", s, n, expected, counts)
		}
	}
	// Virtual-node arcs are not perfectly uniform, so allow slack beyond
	// the i.i.d. bound — but stay orders of magnitude under failure modes.
	if chi2 > 200 {
		t.Fatalf("chi-squared = %.1f (counts %v), distribution too skewed", chi2, counts)
	}
}

// TestRingRemapFraction: growing the ring from N to N+1 shards moves only
// ≈1/(N+1) of the keys — the consistent-hashing property rebalancing will
// rely on — and every moved key lands on the new shard.
func TestRingRemapFraction(t *testing.T) {
	const keys = 40000
	for _, n := range []int{4, 8} {
		old := MustNewRing(n, 0)
		grown := MustNewRing(n+1, 0)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			before, after := old.ShardString(key), grown.ShardString(key)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("key %q moved from %d to %d, not to the new shard %d", key, before, after, n)
				}
			}
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Fatalf("grow %d→%d moved %.3f of keys, want ≈%.3f", n, n+1, frac, ideal)
		}
	}
}

// TestRingRejectsZeroShards: the one invalid configuration errors instead
// of panicking in lookup.
func TestRingRejectsZeroShards(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-3, 16); err == nil {
		t.Fatal("NewRing(-3) succeeded")
	}
}
