// Package shard partitions a CURP deployment horizontally: a consistent-
// hash ring maps each key to one of N independent CURP partitions (shards),
// each with its own master, backups, and witnesses, exactly as the paper's
// RAMCloud evaluation scales by running many one-master partitions side by
// side. Commutativity — and therefore the 1-RTT fast path — is a
// partition-local property, so shards add throughput without widening any
// shard's conflict window.
package shard

import (
	"fmt"
	"sort"

	"curp/internal/witness"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a Ring
// is built with vnodes <= 0. 128 points per shard keeps the maximum arc
// imbalance within a few percent for small shard counts.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over shards 0..N-1, stamped
// with an epoch. Each shard owns the arcs preceding its virtual points, so
// the key→shard mapping is a pure function of (key, shard count, vnodes):
// every client and every process computes the same owner with no
// coordination. Adding one shard moves only ≈1/(N+1) of the keys (the arcs
// the new shard's points claim); all other keys keep their owner — the
// property live rebalancing relies on.
//
// The epoch orders ring versions during reconfiguration: Grow and Shrink
// return a new Ring at epoch+1, and routing clients adopt a ring only if
// its epoch is higher than the one they hold. The mapping itself depends
// only on (shards, vnodes), never on the epoch, so adding and then
// removing a shard restores the previous mapping exactly.
type Ring struct {
	shards int
	vnodes int
	epoch  uint64
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over `shards` partitions with `vnodes` virtual
// points per shard (DefaultVirtualNodes when vnodes <= 0), at epoch 0.
// Virtual point positions are hashes of a stable "shard-<s>/vnode-<v>"
// label, so a shard's points do not depend on how many other shards exist.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := witness.Mix64(witness.KeyHashString(fmt.Sprintf("shard-%d/vnode-%d", s, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) resolve to the lower
		// shard index so the ordering — and the mapping — stays total.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// MustNewRing is NewRing for static configurations known to be valid.
func MustNewRing(shards, vnodes int) *Ring {
	r, err := NewRing(shards, vnodes)
	if err != nil {
		panic(err)
	}
	return r
}

// Shards returns the number of shards the ring distributes over.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Epoch returns the ring's configuration epoch. Epochs increase by one per
// Grow or Shrink; clients treat a higher epoch as strictly newer.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Grow returns a ring covering one more shard at epoch+1. Only the arcs
// the new shard's virtual points claim change owner.
func (r *Ring) Grow() *Ring {
	n := MustNewRing(r.shards+1, r.vnodes)
	n.epoch = r.epoch + 1
	return n
}

// Shrink returns a ring covering one fewer shard at epoch+1, restoring
// exactly the mapping the ring had before the last shard was added. It
// errors when the ring is already down to one shard.
func (r *Ring) Shrink() (*Ring, error) {
	if r.shards <= 1 {
		return nil, fmt.Errorf("shard: cannot shrink a %d-shard ring", r.shards)
	}
	n, err := NewRing(r.shards-1, r.vnodes)
	if err != nil {
		return nil, err
	}
	n.epoch = r.epoch + 1
	return n, nil
}

// Shard returns the shard owning key: the shard of the first virtual point
// at or after the key's ring position, wrapping past the top of the ring.
func (r *Ring) Shard(key []byte) int {
	return r.owner(witness.RingPoint(key))
}

// ShardString is Shard for string keys, avoiding a copy.
func (r *Ring) ShardString(key string) int {
	return r.owner(witness.RingPointString(key))
}

func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Move names one directed key transfer of a rebalance: the arcs owned by
// From under the old ring and by To under the new one.
type Move struct {
	From, To int
	Ranges   []witness.HashRange
}

// MovesBetween computes the arcs whose owner differs between two rings,
// grouped by (old owner, new owner) pair. The union of all boundary points
// of both rings cuts the circle into elementary arcs on which each ring's
// owner is constant, so comparing owners per elementary arc is exact: a
// key changes shard if and only if its position lies in one of the
// returned ranges.
func MovesBetween(old, new *Ring) []Move {
	bounds := make([]uint64, 0, len(old.points)+len(new.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range new.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, h := range bounds {
		if i == 0 || h != uniq[len(uniq)-1] {
			uniq = append(uniq, h)
		}
	}
	if len(uniq) == 0 {
		return nil
	}
	type pair struct{ from, to int }
	grouped := make(map[pair][]witness.HashRange)
	// The arc (uniq[i-1], uniq[i]] has constant owner in both rings; the
	// arc wrapping from the last boundary to the first closes the circle.
	for i := range uniq {
		lo := uniq[(i+len(uniq)-1)%len(uniq)]
		hi := uniq[i]
		if lo == hi { // single-boundary circle: the whole ring, one owner
			continue
		}
		of, nf := old.owner(hi), new.owner(hi)
		if of == nf {
			continue
		}
		p := pair{of, nf}
		rs := grouped[p]
		// Coalesce adjacent arcs with the same transfer direction.
		if len(rs) > 0 && rs[len(rs)-1].Hi == lo {
			rs[len(rs)-1].Hi = hi
			grouped[p] = rs
			continue
		}
		grouped[p] = append(rs, witness.HashRange{Lo: lo, Hi: hi})
	}
	moves := make([]Move, 0, len(grouped))
	for p, rs := range grouped {
		moves = append(moves, Move{From: p.from, To: p.to, Ranges: rs})
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		return moves[i].To < moves[j].To
	})
	return moves
}
