// Package shard partitions a CURP deployment horizontally: a consistent-
// hash ring maps each key to one of N independent CURP partitions (shards),
// each with its own master, backups, and witnesses, exactly as the paper's
// RAMCloud evaluation scales by running many one-master partitions side by
// side. Commutativity — and therefore the 1-RTT fast path — is a
// partition-local property, so shards add throughput without widening any
// shard's conflict window.
package shard

import (
	"fmt"
	"sort"

	"curp/internal/witness"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a Ring
// is built with vnodes <= 0. 128 points per shard keeps the maximum arc
// imbalance within a few percent for small shard counts.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over shards 0..N-1. Each shard
// owns the arcs preceding its virtual points, so the key→shard mapping is a
// pure function of (key, shard count, vnodes): every client and every
// process computes the same owner with no coordination. Adding one shard
// moves only ≈1/(N+1) of the keys (the arcs the new shard's points claim);
// all other keys keep their owner — the property later rebalancing work
// relies on.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over `shards` partitions with `vnodes` virtual
// points per shard (DefaultVirtualNodes when vnodes <= 0). Virtual point
// positions are hashes of a stable "shard-<s>/vnode-<v>" label, so a
// shard's points do not depend on how many other shards exist.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(witness.KeyHashString(fmt.Sprintf("shard-%d/vnode-%d", s, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) resolve to the lower
		// shard index so the ordering — and the mapping — stays total.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// MustNewRing is NewRing for static configurations known to be valid.
func MustNewRing(shards, vnodes int) *Ring {
	r, err := NewRing(shards, vnodes)
	if err != nil {
		panic(err)
	}
	return r
}

// Shards returns the number of shards the ring distributes over.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning key: the shard of the first virtual point
// at or after the key's ring position, wrapping past the top of the ring.
func (r *Ring) Shard(key []byte) int {
	return r.owner(mix64(witness.KeyHash(key)))
}

// ShardString is Shard for string keys, avoiding a copy.
func (r *Ring) ShardString(key string) int {
	return r.owner(mix64(witness.KeyHashString(key)))
}

// mix64 is the murmur3 64-bit finalizer. FNV-1a (witness.KeyHash) mixes
// low bits well but gives the trailing bytes of sequential labels
// ("user:1", "user:2", vnode names) only one multiply of high-bit
// avalanche, which clusters ring positions badly; the finalizer restores
// uniform placement while keeping the key hash itself shared with the
// witness commutativity path.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
