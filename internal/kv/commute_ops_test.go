package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSetCodecCanonical pins the property the whole ClassSetAdd design
// leans on: the stored bytes of a set are a pure function of its member
// SET, never of insertion order or duplication history.
func TestSetCodecCanonical(t *testing.T) {
	members := [][]byte{[]byte("b"), []byte("a"), []byte(""), []byte("a"), []byte("ccc")}
	enc := encodeSet(members)
	got := decodeSet(enc)
	want := []string{"", "a", "b", "ccc"} // sorted, deduplicated
	if len(got) != len(want) {
		t.Fatalf("decode = %q, want %q", got, want)
	}
	for i, m := range got {
		if string(m) != want[i] {
			t.Fatalf("decode[%d] = %q, want %q", i, m, want[i])
		}
	}

	// Any insertion order via setWith reaches identical bytes.
	perm := func(order []int) []byte {
		var v []byte
		for _, i := range order {
			v = setWith(v, members[i])
		}
		return v
	}
	base := perm([]int{0, 1, 2, 3, 4})
	for _, order := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 1, 0, 2, 4, 3, 3}} {
		if !bytes.Equal(perm(order), base) {
			t.Fatalf("order %v produced different bytes", order)
		}
	}

	// setWithout: present vs absent, and canonicalization of the remainder.
	v, found := setWithout(base, []byte("a"))
	if !found {
		t.Fatal("remove of present member reported absent")
	}
	if v2, found2 := setWithout(v, []byte("a")); found2 || !bytes.Equal(v2, v) {
		t.Fatalf("second remove: found=%v changed=%v", found2, !bytes.Equal(v2, v))
	}

	// Garbage bytes (a plain Put landed on the key) decode as empty, so
	// set ops silently re-type the key instead of failing.
	if got := decodeSet([]byte("not a set")); got != nil {
		t.Fatalf("garbage decoded to %q", got)
	}
	if got := setWith([]byte{0xff, 0xff, 0xff, 0xff, 0x01}, []byte("x")); !bytes.Equal(got, encodeSet([][]byte{[]byte("x")})) {
		t.Fatalf("setWith over garbage = %x", got)
	}
}

// TestSetCodecPermutationProperty drives the canonical-form claim with
// random member multisets: every permutation must encode identically.
func TestSetCodecPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw [][]byte) bool {
		var a, b []byte
		for _, m := range raw {
			a = setWith(a, m)
		}
		for _, i := range rng.Perm(len(raw)) {
			b = setWith(b, raw[i])
		}
		if !bytes.Equal(a, b) {
			return false
		}
		// Round trip: decode(encode(x)) is the sorted unique member list.
		dec := decodeSet(a)
		uniq := map[string]bool{}
		for _, m := range raw {
			uniq[string(m)] = true
		}
		if len(dec) != len(uniq) {
			return false
		}
		for i := 1; i < len(dec); i++ {
			if string(dec[i-1]) >= string(dec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestSetOpsReplayDeterministic applies the same SetAdd/SetRemove stream
// to a store in two different interleavings and demands identical stored
// state — the store-level face of the codec property above. It also pins
// the always-true Found rule that keeps completion records replay-safe.
func TestSetOpsReplayDeterministic(t *testing.T) {
	key := []byte("tags")
	ops := []*Command{
		{Op: OpSetAdd, Key: key, Value: []byte("red")},
		{Op: OpSetAdd, Key: key, Value: []byte("blue")},
		{Op: OpSetAdd, Key: key, Value: []byte("red")}, // duplicate add
		{Op: OpSetAdd, Key: key, Value: []byte("green")},
	}
	a, b := NewStore(), NewStore()
	for i, c := range ops {
		res, lsn, err := a.Apply(c, rid(1, uint64(i+1)))
		if err != nil || lsn == 0 {
			t.Fatalf("apply %d: %v lsn=%d", i, err, lsn)
		}
		if !res.Found {
			t.Fatalf("SetAdd %d Found=false; order-dependent result leaked", i)
		}
	}
	for i, j := range []int{3, 2, 0, 1} {
		if _, _, err := b.Apply(ops[j], rid(2, uint64(i+1))); err != nil {
			t.Fatalf("apply %d: %v", j, err)
		}
	}
	av, _, _ := a.Get(key)
	bv, _, _ := b.Get(key)
	if !bytes.Equal(av, bv) {
		t.Fatalf("stores diverged: %x vs %x", av, bv)
	}

	// SetMembers reads the members back, sorted.
	res, lsn, err := a.Apply(&Command{Op: OpSetMembers, Key: key}, rid(1, 9))
	if err != nil || lsn != 0 || !res.Found {
		t.Fatalf("members: %v lsn=%d %+v", err, lsn, res)
	}
	want := []string{"blue", "green", "red"}
	if len(res.Values) != len(want) {
		t.Fatalf("members = %q", res.Values)
	}
	for i, m := range res.Values {
		if string(m) != want[i] {
			t.Fatalf("members[%d] = %q, want %q", i, m, want[i])
		}
	}

	// Remove is also logged with Found=true even when the member was
	// already gone: "was it present" is order-dependent under replay.
	res, lsn, err = a.Apply(&Command{Op: OpSetRemove, Key: key, Value: []byte("absent")}, rid(1, 10))
	if err != nil || lsn == 0 || !res.Found {
		t.Fatalf("remove absent: %v lsn=%d %+v", err, lsn, res)
	}
}

// TestTTLExpiry exercises the lazy-expiry contract: mutations never
// consult the clock (replay determinism), only reads do, and a plain Put
// clears any standing expiry.
func TestTTLExpiry(t *testing.T) {
	s := NewStore()
	var now int64 = 1000
	s.SetClock(func() int64 { return now })

	if _, _, err := s.Apply(&Command{Op: OpPut, Key: []byte("sess"), Value: []byte("v"), ExpireAt: 2000}, rid(1, 1)); err != nil {
		t.Fatal(err)
	}
	if res, _, _ := s.Apply(&Command{Op: OpGet, Key: []byte("sess")}, rid(1, 2)); !res.Found {
		t.Fatal("unexpired key invisible")
	}

	now = 2000 // expiry instant: alive requires expireAt > now
	res, _, _ := s.Apply(&Command{Op: OpGet, Key: []byte("sess")}, rid(1, 3))
	if res.Found {
		t.Fatal("expired key still readable")
	}
	if res.Version == 0 {
		t.Fatal("lazy expiry dropped the version; CondPut fencing needs it")
	}
	if _, _, ok := s.Get([]byte("sess")); ok {
		t.Fatal("Get should miss expired key")
	}

	// A fresh write resurrects the key and, with ExpireAt 0, clears the
	// expiry entirely (redis SET semantics).
	if _, _, err := s.Apply(&Command{Op: OpPut, Key: []byte("sess"), Value: []byte("v2")}, rid(1, 4)); err != nil {
		t.Fatal(err)
	}
	now = 1 << 40
	if res, _, _ := s.Apply(&Command{Op: OpGet, Key: []byte("sess")}, rid(1, 5)); !res.Found {
		t.Fatal("plain Put did not clear expiry")
	}
	if keys := s.ExpiredKeys(now, 0); len(keys) != 0 {
		t.Fatalf("expiry index still lists %q", keys)
	}
}

// TestPurgeExpiredCutoff pins the race rule of the sync-tail purge: the
// logged OpPurgeExpired carries the cutoff it observed, and each key
// re-checks its CURRENT expiry against that cutoff, so a racing fresh
// write (which cleared or pushed the TTL) is never purged.
func TestPurgeExpiredCutoff(t *testing.T) {
	s := NewStore()
	var now int64 = 100
	s.SetClock(func() int64 { return now })

	s.Apply(&Command{Op: OpPut, Key: []byte("dead"), Value: []byte("x"), ExpireAt: 150}, rid(1, 1))
	s.Apply(&Command{Op: OpPut, Key: []byte("racy"), Value: []byte("x"), ExpireAt: 150}, rid(1, 2))
	now = 200

	keys := s.ExpiredKeys(now, 0)
	if len(keys) != 2 {
		t.Fatalf("expired = %q, want 2 keys", keys)
	}
	// Between ExpiredKeys and the purge landing in the log, a client
	// refreshes one key. The purge must skip it.
	s.Apply(&Command{Op: OpPut, Key: []byte("racy"), Value: []byte("y"), ExpireAt: 10_000}, rid(1, 3))

	purge := &Command{Op: OpPurgeExpired, Delta: now}
	for _, k := range keys {
		purge.Pairs = append(purge.Pairs, KV{Key: k})
	}
	res, lsn, err := s.Apply(purge, rid(1, 4))
	if err != nil || lsn == 0 || !res.Found {
		t.Fatalf("purge: %v lsn=%d %+v", err, lsn, res)
	}
	if _, _, ok := s.Get([]byte("dead")); ok {
		t.Fatal("purge left the expired key")
	}
	if v, _, ok := s.Get([]byte("racy")); !ok || string(v) != "y" {
		t.Fatalf("purge ate the refreshed key: %q ok=%v", v, ok)
	}

	// Replay determinism: a replica with a WILDLY different clock replays
	// the same entries to the same state, because expiry decisions ride in
	// the log (the purge's cutoff), never the local clock.
	r := NewReplicaStore()
	r.SetClock(func() int64 { return 0 })
	for _, en := range s.EntriesSince(0) {
		if err := r.ReplayEntry(&en); err != nil {
			t.Fatalf("replay lsn %d: %v", en.LSN, err)
		}
	}
	for _, k := range []string{"dead", "racy"} {
		sv, sver, sok := s.Get([]byte(k))
		rv, rver, rok := r.Get([]byte(k))
		// The replica's clock says nothing is expired; compare raw
		// object state via version + stored bytes instead of liveness.
		if sok != rok && k != "racy" {
			t.Fatalf("%s: visibility diverged primary=%v replica=%v", k, sok, rok)
		}
		if sok && (!bytes.Equal(sv, rv) || sver != rver) {
			t.Fatalf("%s: replica diverged %q/%d vs %q/%d", k, rv, rver, sv, sver)
		}
	}
}

// TestBucketTakeSemantics walks the token-bucket command through grant,
// drain, deny, and mistyped-value paths, checking the Demote markers that
// keep order-observable takes off the speculative path.
func TestBucketTakeSemantics(t *testing.T) {
	s := NewStore()
	key := []byte("quota")
	s.Apply(&Command{Op: OpIncrement, Key: key, Delta: 3}, rid(1, 1))

	// Grant with capacity left over: no demote — takes on a non-empty
	// bucket commute.
	res, lsn, err := s.Apply(&Command{Op: OpBucketTake, Key: key, Delta: 2}, rid(1, 2))
	if err != nil || lsn == 0 || !res.Found || string(res.Value) != "1" || res.Demote {
		t.Fatalf("grant: %v lsn=%d %+v", err, lsn, res)
	}

	// Draining grant: remainder 0, demoted — the NEXT take will deny, so
	// this grant's position in the order is observable.
	res, _, err = s.Apply(&Command{Op: OpBucketTake, Key: key, Delta: 1}, rid(1, 3))
	if err != nil || !res.Found || string(res.Value) != "0" || !res.Demote {
		t.Fatalf("draining grant: %v %+v", err, res)
	}

	// Denial: logged (version bump) with the observed balance, demoted,
	// and the balance unchanged.
	res, lsn, err = s.Apply(&Command{Op: OpBucketTake, Key: key, Delta: 1}, rid(1, 4))
	if err != nil || lsn == 0 || res.Found || string(res.Value) != "0" || !res.Demote {
		t.Fatalf("deny: %v lsn=%d %+v", err, lsn, res)
	}
	if v, _, ok := s.Get(key); !ok || string(v) != "0" {
		t.Fatalf("deny mutated balance to %q", v)
	}

	// A take from a missing key denies at balance 0 (and creates the
	// logged denial record).
	res, lsn, err = s.Apply(&Command{Op: OpBucketTake, Key: []byte("ghost"), Delta: 1}, rid(1, 5))
	if err != nil || lsn == 0 || res.Found || string(res.Value) != "0" {
		t.Fatalf("deny missing: %v lsn=%d %+v", err, lsn, res)
	}

	// A take against a non-numeric value fails without logging.
	s.Apply(&Command{Op: OpPut, Key: []byte("str"), Value: []byte("abc")}, rid(1, 6))
	head := s.Head()
	if _, _, err := s.Apply(&Command{Op: OpBucketTake, Key: []byte("str"), Delta: 1}, rid(1, 7)); !errors.Is(err, ErrNotCounter) {
		t.Fatalf("err = %v", err)
	}
	if s.Head() != head {
		t.Fatal("failed take advanced log")
	}
}

// TestAppendLength checks OpAppend's running-length result and that
// appends concatenate in log order (Append is ClassWrite: order matters,
// which is exactly why it is NOT in a commuting class).
func TestAppendLength(t *testing.T) {
	s := NewStore()
	key := []byte("log")
	total := 0
	for i, part := range []string{"alpha,", "beta,", "gamma"} {
		total += len(part)
		res, lsn, err := s.Apply(&Command{Op: OpAppend, Key: key, Value: []byte(part)}, rid(1, uint64(i+1)))
		if err != nil || lsn == 0 || !res.Found {
			t.Fatalf("append %d: %v lsn=%d %+v", i, err, lsn, res)
		}
		if string(res.Value) != fmt.Sprint(total) {
			t.Fatalf("append %d length = %q, want %d", i, res.Value, total)
		}
	}
	v, _, ok := s.Get(key)
	if !ok || string(v) != "alpha,beta,gamma" {
		t.Fatalf("value = %q", v)
	}
}
