// Package kv is the RAMCloud-like storage substrate the paper's §5.1
// evaluation runs CURP on: an in-memory, log-structured key-value store
// with versioned objects, a replicated operation log, and backup servers
// that can rebuild a crashed master's state. It deliberately mirrors the
// properties CURP relies on: every update appends a log entry carrying the
// RIFL RPC ID and result (so completion records are durable exactly when
// the update is, paper §3.3), and each object remembers the LSN of its last
// update (so masters can tell synced from unsynced objects by comparing
// against the last synced LSN, paper §4.3).
package kv

import (
	"errors"
	"fmt"

	"curp/internal/commute"
	"curp/internal/rpc"
	"curp/internal/witness"
)

// CommandOp enumerates the store's operations.
type CommandOp uint8

// Supported operations. Writes are Put, Delete, Increment, and CondPut;
// Get and MultiGet are read-only.
const (
	OpGet CommandOp = iota
	OpPut
	OpDelete
	OpIncrement
	OpCondPut // conditional write: succeeds only at the expected version
	OpMultiPut
	OpMultiGet
	// OpMultiIncr atomically adds per-key deltas to several counters (one
	// log entry, all-or-nothing); each pair's Value holds the decimal
	// delta. It commutes only with operations touching none of its keys.
	OpMultiIncr
	// OpMigrateObject installs one migrated object verbatim during a shard
	// rebalance: Key/Value are the object, ExpectVersion carries the
	// version it had on the source shard (preserved so conditional writes
	// keep working across the handoff), and Delta != 0 marks a tombstone.
	// It is issued only by the migration install path, never by clients.
	OpMigrateObject
	// OpMigrateRecord installs one migrated RIFL completion record: the
	// entry's RPC ID is the original operation's ID, Value holds the
	// original encoded Result, and Hashes carries the operation's
	// commutativity footprint. The command mutates no object — it exists
	// so the completion record rides the log to the target's backups and
	// survives a target crash exactly like a natively executed operation.
	OpMigrateRecord
	// OpTxnPrepare is phase one of a cross-shard transaction on a
	// participant shard: validate the shard's read versions and lock every
	// touched key, stashing the shard's writes until the decision arrives.
	// See txn.go.
	OpTxnPrepare
	// OpTxnDecide is phase two: record the transaction's outcome in the
	// home shard's decision table (Txn.HomeRecord), or apply/discard a
	// participant's prepared writes and release its locks.
	OpTxnDecide
	// OpTxnForget prunes a transaction's decision record from the home
	// shard once every participant acknowledged its decide — the record's
	// only readers are resolvers of still-locked participants, so after
	// the last ack it is garbage. Logged (replay re-prunes); forgetting a
	// record that does not exist is a no-op that appends nothing.
	OpTxnForget
	// OpTxnApply commits a single-shard transaction atomically in one log
	// entry: validate every read version, then apply every write. It takes
	// no locks and rides CURP's normal speculative update path.
	OpTxnApply
	// OpAppend appends Value to the byte string at Key (creating it when
	// absent). Appends are order-dependent — "ab" ≠ "ba" — so the op stays
	// in the write class; it exists because append-heavy logs still want
	// the single-RPC verb.
	OpAppend
	// OpSetAdd adds Value as a member of the set at Key. Additions commute
	// with each other (the stored set is kept sorted and deduplicated), so
	// concurrent SetAdds on one hot set stay on the 1-RTT fast path.
	OpSetAdd
	// OpSetRemove removes Value from the set at Key. Removals commute with
	// each other; an add and a remove of the same era do NOT commute, which
	// forces a sync between them and yields observed-remove semantics (a
	// remove only ever deletes members whose add it was ordered after).
	OpSetRemove
	// OpSetMembers reads the set at Key as one member per Values entry.
	OpSetMembers
	// OpBucketTake takes Delta tokens from the bucket at Key (a decimal
	// counter refilled with Increment/Put). A grant subtracts and returns
	// the remainder; an exhausted bucket denies (Found=false) but is STILL
	// logged, so the denial's completion record is durable before the
	// client may observe it. Takes commute while the bucket stays positive;
	// a take that denies or drains the bucket demotes itself to the sync
	// path (Result.Demote).
	OpBucketTake
	// OpPurgeExpired deletes the objects named in Pairs whose stored expiry
	// is ≤ Delta (the purge cutoff, a wall-clock timestamp in unix nanos
	// chosen by the master when it proposed the purge). Carrying both the
	// keys and the cutoff makes replay deterministic: a backup replaying
	// the log reaches the same state without consulting its own clock.
	// Issued only by the master's sync tail, never by clients.
	OpPurgeExpired
)

// String names the operation.
func (o CommandOp) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpIncrement:
		return "increment"
	case OpCondPut:
		return "condput"
	case OpMultiPut:
		return "multiput"
	case OpMultiGet:
		return "multiget"
	case OpMultiIncr:
		return "multiincr"
	case OpMigrateObject:
		return "migrate-object"
	case OpMigrateRecord:
		return "migrate-record"
	case OpTxnPrepare:
		return "txn-prepare"
	case OpTxnForget:
		return "txn-forget"
	case OpTxnDecide:
		return "txn-decide"
	case OpTxnApply:
		return "txn-apply"
	case OpAppend:
		return "append"
	case OpSetAdd:
		return "set-add"
	case OpSetRemove:
		return "set-remove"
	case OpSetMembers:
		return "set-members"
	case OpBucketTake:
		return "bucket-take"
	case OpPurgeExpired:
		return "purge-expired"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// KV is one key/value pair of a multi-object command.
type KV struct {
	Key   []byte
	Value []byte
}

// IncrPair is one leg of an atomic multi-key increment.
type IncrPair struct {
	Key   []byte
	Delta int64
}

// Command is one client operation on the store.
type Command struct {
	Op    CommandOp
	Key   []byte
	Value []byte
	// Delta is the increment amount for OpIncrement.
	Delta int64
	// ExpectVersion is the required current version for OpCondPut.
	ExpectVersion uint64
	// Pairs carries the objects of OpMultiPut / the keys of OpMultiGet.
	Pairs []KV
	// Hashes, when set, overrides the computed commutativity footprint.
	// Only OpMigrateRecord uses it: the original keys are not carried
	// across the wire, but their hashes must survive for witness GC and
	// recovery-replay filtering on the target shard.
	Hashes []uint64
	// Txn carries the transactional payload of OpTxnPrepare, OpTxnDecide,
	// and OpTxnApply (see txn.go); nil for every other op.
	Txn *TxnCommand
	// ExpireAt, when non-zero on OpPut, sets the object's expiry (unix
	// nanos): reads past that instant treat the object as absent, and the
	// master's sync tail purges it with a logged OpPurgeExpired. A plain
	// Put (ExpireAt == 0) clears any existing expiry, like redis SET.
	// Execution never consults a clock for mutations — only reads compare
	// against now — so log replay on backups stays deterministic.
	ExpireAt int64
	// owned marks a command decoded off the wire: every byte slice in it
	// is a private copy no one else references, so the store may adopt
	// value buffers instead of defensively copying them (see
	// Store.putOwned). Locally constructed commands leave it false.
	owned bool
}

// IsReadOnly reports whether the command cannot modify state. Read-only
// commands are not recorded in witnesses, but still participate in the
// master's commutativity check (a read of an unsynced object forces a
// sync, paper §3.2.3).
func (c *Command) IsReadOnly() bool {
	return c.Op == OpGet || c.Op == OpMultiGet || c.Op == OpSetMembers
}

// Class returns the command's commutativity class, derived from the op
// rather than stored: two operations of the same non-write class on one key
// may complete speculatively in either order (see internal/commute). The
// class is carried on the wire next to the key hashes so witnesses can
// consult it, but masters re-derive it from the decoded command — a client
// cannot widen its own fast path by lying about the class.
func (c *Command) Class() commute.Class {
	switch c.Op {
	case OpIncrement:
		return commute.ClassCounter
	case OpSetAdd:
		return commute.ClassSetAdd
	case OpSetRemove:
		return commute.ClassSetRemove
	case OpBucketTake:
		return commute.ClassBucket
	}
	// Everything else — including OpAppend (order-dependent) and
	// OpMultiIncr (its per-key deltas commute, but the command's multi-key
	// footprint shares the write path's conflict handling) — is a write.
	return commute.ClassWrite
}

// KeyHashes returns the 64-bit hashes of every object the command touches,
// the unit of CURP's commutativity checks.
func (c *Command) KeyHashes() []uint64 {
	// Explicit Hashes win, including for transactional commands:
	// participant decides carry no read/write sets (the prepare stashed
	// them), so the coordinator attaches the group's hashes for migration
	// checks and commutativity tracking.
	if len(c.Hashes) > 0 {
		return c.Hashes
	}
	if c.Txn != nil {
		return c.Txn.KeyHashes()
	}
	if len(c.Pairs) > 0 {
		hs := make([]uint64, len(c.Pairs))
		for i, p := range c.Pairs {
			hs[i] = witness.KeyHash(p.Key)
		}
		return hs
	}
	return []uint64{witness.KeyHash(c.Key)}
}

// Marshal appends the command's wire form to e.
func (c *Command) Marshal(e *rpc.Encoder) {
	e.U8(uint8(c.Op))
	e.Bytes32(c.Key)
	e.Bytes32(c.Value)
	e.I64(c.Delta)
	e.U64(c.ExpectVersion)
	e.U32(uint32(len(c.Pairs)))
	for _, p := range c.Pairs {
		e.Bytes32(p.Key)
		e.Bytes32(p.Value)
	}
	e.U64Slice(c.Hashes)
	e.Bool(c.Txn != nil)
	if c.Txn != nil {
		c.Txn.marshal(e)
	}
	e.I64(c.ExpireAt)
}

// Encode returns the command's wire form.
func (c *Command) Encode() []byte {
	e := rpc.NewEncoder(32 + len(c.Key) + len(c.Value))
	c.Marshal(e)
	return e.Bytes()
}

// UnmarshalCommand decodes a command from d.
func UnmarshalCommand(d *rpc.Decoder) (*Command, error) {
	c := &Command{
		Op:    CommandOp(d.U8()),
		Key:   d.BytesCopy32(),
		Value: d.BytesCopy32(),
	}
	c.Delta = d.I64()
	c.ExpectVersion = d.U64()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		c.Pairs = append(c.Pairs, KV{Key: d.BytesCopy32(), Value: d.BytesCopy32()})
	}
	c.Hashes = d.U64Slice()
	if d.Bool() {
		c.Txn = unmarshalTxnCommand(d)
	}
	c.ExpireAt = d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	c.owned = true
	return c, nil
}

// DecodeCommand decodes a command from its wire form.
func DecodeCommand(b []byte) (*Command, error) {
	return UnmarshalCommand(rpc.NewDecoder(b))
}

// Result is the outcome of executing a command.
type Result struct {
	// Found reports, for reads, whether the object existed; for CondPut,
	// whether the condition held and the write was applied.
	Found bool
	// Value is the read value (Get) or new counter value (Increment).
	Value []byte
	// Version is the object's version after the operation (writes) or at
	// the read (reads).
	Version uint64
	// Values holds MultiGet results, aligned with the requested keys; a
	// nil element means the key did not exist. SetMembers returns the
	// set's members here, one per entry.
	Values [][]byte
	// Demote marks a result whose operation executed but must NOT be
	// revealed speculatively even when it commuted with the unsynced
	// window: the master treats it like a conflict and syncs before
	// replying. BucketTake sets it on a denial or on the take that drains
	// the bucket — once a bucket can deny, take order becomes observable.
	// Demote is a master-local execution signal, not part of the wire form.
	Demote bool `json:"-"`
}

// Marshal appends the result's wire form to e.
func (r *Result) Marshal(e *rpc.Encoder) {
	e.Bool(r.Found)
	e.Bytes32(r.Value)
	e.U64(r.Version)
	e.U32(uint32(len(r.Values)))
	for _, v := range r.Values {
		e.Bool(v != nil)
		e.Bytes32(v)
	}
}

// Encode returns the result's wire form.
func (r *Result) Encode() []byte {
	e := rpc.NewEncoder(16 + len(r.Value))
	r.Marshal(e)
	return e.Bytes()
}

// UnmarshalResult decodes a result from d.
func UnmarshalResult(d *rpc.Decoder) (*Result, error) {
	r := &Result{
		Found:   d.Bool(),
		Value:   d.BytesCopy32(),
		Version: d.U64(),
	}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		present := d.Bool()
		v := d.BytesCopy32()
		if !present {
			v = nil
		}
		r.Values = append(r.Values, v)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeResult decodes a result from its wire form.
func DecodeResult(b []byte) (*Result, error) {
	return UnmarshalResult(rpc.NewDecoder(b))
}

// ErrVersionMismatch reports a failed conditional write.
var ErrVersionMismatch = errors.New("kv: version mismatch")

// ErrNotCounter reports an increment on a non-integer value.
var ErrNotCounter = errors.New("kv: value is not a counter")
