package kv

// Set value representation: the stored bytes of a set object are the
// concatenation of (u32 little-endian length + member) entries, sorted
// bytewise and deduplicated. Sorting makes the representation canonical, so
// two commutative SetAdds reach the same stored bytes in either execution
// order — the property that lets ClassSetAdd stay speculative. A Get on a
// set key returns these raw bytes; SetMembers decodes them.

import (
	"encoding/binary"
	"sort"
)

// decodeSet splits a stored set value into its members. Invalid encodings
// (a plain Put landed on the key) decode as empty — set ops then rebuild
// the key as a set, mirroring how Increment treats a non-counter value as
// an error but sets silently re-type.
func decodeSet(v []byte) [][]byte {
	var members [][]byte
	for len(v) >= 4 {
		n := binary.LittleEndian.Uint32(v)
		v = v[4:]
		if uint32(len(v)) < n {
			return nil
		}
		members = append(members, v[:n:n])
		v = v[n:]
	}
	if len(v) != 0 {
		return nil
	}
	return members
}

// encodeSet builds the canonical stored form: members sorted bytewise,
// duplicates removed.
func encodeSet(members [][]byte) []byte {
	sort.Slice(members, func(i, j int) bool {
		return string(members[i]) < string(members[j])
	})
	size := 0
	for _, m := range members {
		size += 4 + len(m)
	}
	out := make([]byte, 0, size)
	var prev []byte
	first := true
	for _, m := range members {
		if !first && string(m) == string(prev) {
			continue
		}
		first, prev = false, m
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(m)))
		out = append(out, hdr[:]...)
		out = append(out, m...)
	}
	return out
}

// setWith returns the canonical set value with member added.
func setWith(v, member []byte) []byte {
	return encodeSet(append(decodeSet(v), member))
}

// setWithout returns the canonical set value with member removed, and
// whether it was present.
func setWithout(v, member []byte) ([]byte, bool) {
	members := decodeSet(v)
	for i, m := range members {
		if string(m) == string(member) {
			return encodeSet(append(members[:i], members[i+1:]...)), true
		}
	}
	return encodeSet(members), false
}
