package kv

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"curp/internal/rifl"
	"curp/internal/rpc"
)

// LSN is a log sequence number; entry n is the n-th update applied by the
// master (1-based). LSN 0 means "never".
type LSN uint64

// Entry is one record of the master's operation log: the mutation itself
// plus the RIFL identity and saved result, replicated to backups as a unit
// so completion records are durable exactly when the update is (§3.3).
type Entry struct {
	LSN    LSN
	Cmd    *Command
	ID     rifl.RPCID
	Result *Result
}

// Marshal appends the entry's wire form to e.
func (en *Entry) Marshal(e *rpc.Encoder) {
	e.U64(uint64(en.LSN))
	e.U64(uint64(en.ID.Client))
	e.U64(uint64(en.ID.Seq))
	en.Cmd.Marshal(e)
	en.Result.Marshal(e)
}

// UnmarshalEntry decodes an entry from d.
func UnmarshalEntry(d *rpc.Decoder) (*Entry, error) {
	en := &Entry{
		LSN: LSN(d.U64()),
		ID:  rifl.RPCID{Client: rifl.ClientID(d.U64()), Seq: rifl.Seq(d.U64())},
	}
	var err error
	if en.Cmd, err = UnmarshalCommand(d); err != nil {
		return nil, err
	}
	if en.Result, err = UnmarshalResult(d); err != nil {
		return nil, err
	}
	return en, nil
}

// object is the stored state of one key.
type object struct {
	value   []byte
	version uint64
	lsn     LSN // log position of the last update to this key
	// expireAt is the object's expiry instant in unix nanos (0 = never).
	// Reads past it treat the object as absent; the master's sync tail
	// purges it with a logged OpPurgeExpired. Mutations never consult the
	// clock, so replaying the log reproduces identical state.
	expireAt int64
}

// Store is an in-memory, log-structured key-value store: the state machine
// a CURP master executes commands against. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string]*object
	log     []Entry
	head    LSN
	// locks maps key → the prepared transaction holding it; prepared maps
	// transaction ID → its prepared state; decisions is the home-shard
	// decision table. See txn.go.
	locks     map[string]*preparedTxn
	prepared  map[rifl.RPCID]*preparedTxn
	decisions map[rifl.RPCID]txnDecision
	// txnTouched carries the keys the latest transactional write-set
	// application mutated, from applyTxnWrites to stampKeys (both run
	// under mu within one Apply/ReplayEntry).
	txnTouched [][]byte
	// replica marks a materialized view replayed from someone else's log
	// (a backup's read store): it tracks head and objects but does not
	// retain log entries, since the authoritative log lives beside it and
	// duplicating it doubles replication's memory and GC cost.
	replica bool
	// expiry indexes keys with a pending TTL (key → expireAt), so the
	// purge scan is O(keys-with-TTL), not O(keys).
	expiry map[string]int64
	// now supplies the clock reads compare expiries against. Injectable
	// (tests); mutations never call it.
	now func() int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		objects:   make(map[string]*object),
		locks:     make(map[string]*preparedTxn),
		prepared:  make(map[rifl.RPCID]*preparedTxn),
		decisions: make(map[rifl.RPCID]txnDecision),
		expiry:    make(map[string]int64),
		now:       func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock replaces the clock reads compare expiries against (tests).
func (s *Store) SetClock(now func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// NewReplicaStore returns a store that materializes replayed entries
// without retaining its own copy of the log (see Store.replica).
func NewReplicaStore() *Store {
	s := NewStore()
	s.replica = true
	return s
}

// Apply executes cmd, appending a log entry for mutations. It returns the
// result and, for mutations, the entry's LSN (0 for pure reads and no-op
// conditional writes). id is the RIFL identity stored in the log entry.
func (s *Store) Apply(cmd *Command, id rifl.RPCID) (*Result, LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, mutated, err := s.exec(cmd)
	if err != nil {
		return nil, 0, err
	}
	if !mutated {
		return res, 0, nil
	}
	s.head++
	entry := Entry{LSN: s.head, Cmd: cmd, ID: id, Result: res}
	s.log = append(s.log, entry)
	// Stamp each touched object with the entry's LSN so commutativity
	// checks can compare it against the last synced LSN (§4.3).
	s.stampKeys(cmd, s.head)
	return res, s.head, nil
}

// stampKeys records lsn as the last-mutation position of every object a
// mutating command touched. Must hold s.mu.
func (s *Store) stampKeys(cmd *Command, lsn LSN) {
	if cmd.Txn != nil {
		// Transactional entries stamp the keys their write-set application
		// touched (none for prepares and aborts, which mutate no objects).
		for _, k := range s.txnTouched {
			if o := s.objects[string(k)]; o != nil {
				o.lsn = lsn
			}
		}
		s.txnTouched = nil
		return
	}
	if len(cmd.Pairs) > 0 && (cmd.Op == OpMultiPut || cmd.Op == OpMultiIncr) {
		for _, p := range cmd.Pairs {
			if o := s.objects[string(p.Key)]; o != nil {
				o.lsn = lsn
			}
		}
		return
	}
	if len(cmd.Key) == 0 {
		return // keyless log markers (OpMigrateRecord) stamp nothing
	}
	if o := s.objects[string(cmd.Key)]; o != nil {
		o.lsn = lsn
	}
}

// exec runs the command against the object table. Must hold s.mu.
func (s *Store) exec(cmd *Command) (res *Result, mutated bool, err error) {
	switch cmd.Op {
	case OpMigrateObject, OpMigrateRecord, OpTxnPrepare, OpTxnDecide, OpTxnForget, OpTxnApply:
		// Transactional ops handle locks themselves; migration installs
		// bypass them (installed state was resolved before export).
	default:
		// An operation touching a key locked by a prepared transaction
		// must wait for the decision: its outcome would otherwise race the
		// transaction's atomic commit point.
		if lerr := s.cmdLockConflict(cmd); lerr != nil {
			return nil, false, lerr
		}
	}
	switch cmd.Op {
	case OpGet:
		o := s.objects[string(cmd.Key)]
		if !s.alive(o) { // missing, tombstoned, or lazily expired
			var version uint64
			if o != nil {
				version = o.version
			}
			return &Result{Version: version}, false, nil
		}
		return &Result{Found: true, Value: append([]byte(nil), o.value...), Version: o.version}, false, nil

	case OpMultiGet:
		res := &Result{Found: true}
		for _, p := range cmd.Pairs {
			o := s.objects[string(p.Key)]
			if !s.alive(o) {
				res.Values = append(res.Values, nil)
			} else {
				res.Values = append(res.Values, append([]byte(nil), o.value...))
			}
		}
		return res, false, nil

	case OpSetMembers:
		o := s.objects[string(cmd.Key)]
		if !s.alive(o) {
			var version uint64
			if o != nil {
				version = o.version
			}
			return &Result{Version: version}, false, nil
		}
		res := &Result{Found: true, Version: o.version}
		for _, m := range decodeSet(o.value) {
			res.Values = append(res.Values, append([]byte(nil), m...))
		}
		return res, false, nil

	case OpPut:
		o := s.valuePut(cmd, cmd.Key, cmd.Value)
		s.setExpiry(cmd.Key, o, cmd.ExpireAt)
		return &Result{Found: true, Version: o.version}, true, nil

	case OpAppend:
		o := s.objects[string(cmd.Key)]
		var next []byte
		if o != nil && o.value != nil {
			next = append(append(make([]byte, 0, len(o.value)+len(cmd.Value)), o.value...), cmd.Value...)
		} else {
			next = append([]byte(nil), cmd.Value...)
		}
		no := s.putOwned(cmd.Key, next)
		return &Result{Found: true, Value: []byte(strconv.Itoa(len(next))), Version: no.version}, true, nil

	case OpSetAdd:
		o := s.objects[string(cmd.Key)]
		var cur []byte
		if o != nil {
			cur = o.value
		}
		no := s.putOwned(cmd.Key, setWith(cur, cmd.Value))
		// Found is always true: "was the member new" is order-dependent
		// under commutative replay (two adds of one member swap answers),
		// so it must not leak into the completion record.
		return &Result{Found: true, Version: no.version}, true, nil

	case OpSetRemove:
		o := s.objects[string(cmd.Key)]
		var cur []byte
		if o != nil {
			cur = o.value
		}
		next, _ := setWithout(cur, cmd.Value)
		no := s.putOwned(cmd.Key, next)
		// Like SetAdd, "was it present" is order-dependent; always-true
		// Found keeps the completion record replay-deterministic.
		return &Result{Found: true, Version: no.version}, true, nil

	case OpBucketTake:
		o := s.objects[string(cmd.Key)]
		var cur int64
		if o != nil && o.value != nil {
			v, perr := strconv.ParseInt(string(o.value), 10, 64)
			if perr != nil {
				return nil, false, ErrNotCounter
			}
			cur = v
		}
		if cur < cmd.Delta {
			// Denial. Logged anyway (version bump, value unchanged): the
			// denial's completion record must be durable before the client
			// can act on it, exactly like a Delete of a missing key. Demote
			// keeps it off the speculative path — a bucket that can deny
			// has made take order observable.
			//
			// Residual anomaly, accepted and bounded: if the master crashes
			// before a denial syncs, recovery replays the witness records
			// in arbitrary order and may re-grant capacity this denial
			// observed as exhausted — unsynced capacity can redistribute
			// across takers. The bucket never over-debits (every replayed
			// grant re-checks the balance), and no client that COMPLETED a
			// take sees its grant revoked, because completion requires the
			// result to be durable first.
			if o == nil {
				o = &object{}
				s.objects[string(cmd.Key)] = o
			}
			o.version++
			return &Result{Found: false, Value: []byte(strconv.FormatInt(cur, 10)), Version: o.version, Demote: true}, true, nil
		}
		rem := cur - cmd.Delta
		no := s.putOwned(cmd.Key, []byte(strconv.FormatInt(rem, 10)))
		// Draining the bucket also demotes: the NEXT take will deny, so
		// this grant's order relative to it matters.
		return &Result{Found: true, Value: append([]byte(nil), no.value...), Version: no.version, Demote: rem == 0}, true, nil

	case OpPurgeExpired:
		purged := 0
		var lastVer uint64
		for _, p := range cmd.Pairs {
			o := s.objects[string(p.Key)]
			if o == nil || o.expireAt == 0 || o.expireAt > cmd.Delta {
				continue // raced a fresh write that cleared or pushed the TTL
			}
			o.value = nil
			o.version++
			s.setExpiry(p.Key, o, 0)
			purged++
			lastVer = o.version
		}
		return &Result{Found: purged > 0, Version: lastVer}, true, nil

	case OpMultiPut:
		var last uint64
		for _, p := range cmd.Pairs {
			last = s.valuePut(cmd, p.Key, p.Value).version
		}
		return &Result{Found: true, Version: last}, true, nil

	case OpDelete:
		o := s.objects[string(cmd.Key)]
		if o == nil {
			// Deleting a missing key is a no-op but still logged, so the
			// delete's completion record reaches backups.
			s.objects[string(cmd.Key)] = &object{version: 1}
			return &Result{Found: false, Version: 1}, true, nil
		}
		o.value = nil
		o.version++
		s.setExpiry(cmd.Key, o, 0)
		return &Result{Found: true, Version: o.version}, true, nil

	case OpIncrement:
		o := s.objects[string(cmd.Key)]
		var cur int64
		if o != nil && o.value != nil {
			v, perr := strconv.ParseInt(string(o.value), 10, 64)
			if perr != nil {
				return nil, false, ErrNotCounter
			}
			cur = v
		}
		cur += cmd.Delta
		no := s.putOwned(cmd.Key, []byte(strconv.FormatInt(cur, 10)))
		return &Result{Found: true, Value: append([]byte(nil), no.value...), Version: no.version}, true, nil

	case OpMultiIncr:
		// Validate every leg before mutating anything: atomicity demands
		// all-or-nothing even on type errors.
		deltas := make([]int64, len(cmd.Pairs))
		currents := make([]int64, len(cmd.Pairs))
		for i, p := range cmd.Pairs {
			d, perr := strconv.ParseInt(string(p.Value), 10, 64)
			if perr != nil {
				return nil, false, fmt.Errorf("kv: multiincr delta %q: %w", p.Value, ErrNotCounter)
			}
			deltas[i] = d
			if o := s.objects[string(p.Key)]; o != nil && o.value != nil {
				v, perr := strconv.ParseInt(string(o.value), 10, 64)
				if perr != nil {
					return nil, false, ErrNotCounter
				}
				currents[i] = v
			}
		}
		res := &Result{Found: true}
		for i, p := range cmd.Pairs {
			no := s.putOwned(p.Key, []byte(strconv.FormatInt(currents[i]+deltas[i], 10)))
			res.Values = append(res.Values, append([]byte(nil), no.value...))
		}
		return res, true, nil

	case OpMigrateObject:
		// Install a migrated object verbatim: value, tombstone state, and
		// version are whatever the source shard exported, so version-based
		// conditional writes keep their meaning across the handoff.
		o := s.objects[string(cmd.Key)]
		if o == nil {
			o = &object{}
			s.objects[string(cmd.Key)] = o
		}
		if cmd.Delta != 0 { // tombstone
			o.value = nil
		} else {
			o.value = append([]byte(nil), cmd.Value...)
			if o.value == nil {
				o.value = []byte{}
			}
		}
		o.version = cmd.ExpectVersion
		s.setExpiry(cmd.Key, o, cmd.ExpireAt)
		return &Result{Found: cmd.Delta == 0, Version: o.version}, true, nil

	case OpMigrateRecord:
		// A pure log marker: no object changes, but the entry (which
		// carries the original RPC ID and, via this result, the original
		// outcome) is appended and replicated, making the migrated
		// completion record as durable as a native one.
		res, err := DecodeResult(cmd.Value)
		if err != nil {
			return nil, false, fmt.Errorf("kv: migrate-record result: %w", err)
		}
		return res, true, nil

	case OpTxnPrepare:
		return s.execTxnPrepare(cmd)

	case OpTxnDecide:
		return s.execTxnDecide(cmd)

	case OpTxnForget:
		return s.execTxnForget(cmd)

	case OpTxnApply:
		return s.execTxnApply(cmd)

	case OpCondPut:
		o := s.objects[string(cmd.Key)]
		var cur uint64
		if o != nil {
			cur = o.version
		}
		if cur != cmd.ExpectVersion {
			// Failed condition: no mutation, reported via Found=false.
			return &Result{Found: false, Version: cur}, false, nil
		}
		no := s.valuePut(cmd, cmd.Key, cmd.Value)
		return &Result{Found: true, Version: no.version}, true, nil

	default:
		return nil, false, fmt.Errorf("kv: unknown op %v", cmd.Op)
	}
}

// alive reports whether an object holds a readable value: present, not
// tombstoned, and not past its expiry. Only the read paths call it — a
// mutation consulting the clock would make log replay nondeterministic.
// Must hold s.mu.
func (s *Store) alive(o *object) bool {
	if o == nil || o.value == nil {
		return false
	}
	return o.expireAt == 0 || o.expireAt > s.now()
}

// setExpiry records an object's expiry instant (0 clears it) and keeps the
// expiry index in step. Must hold s.mu.
func (s *Store) setExpiry(key []byte, o *object, at int64) {
	if o.expireAt == at {
		return
	}
	o.expireAt = at
	if at == 0 {
		delete(s.expiry, string(key))
	} else {
		s.expiry[string(key)] = at
	}
}

// ExpiredKeys returns up to limit keys whose expiry is ≤ now and that are
// not locked by a prepared transaction, for the master's sync-tail purge
// (limit ≤ 0 = unlimited). The caller logs them with OpPurgeExpired, which
// re-checks each expiry against its carried cutoff, so a racing fresh
// write is never purged.
func (s *Store) ExpiredKeys(now int64, limit int) [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [][]byte
	for k, at := range s.expiry {
		if at > now {
			continue
		}
		if len(s.locks) > 0 && s.locks[k] != nil {
			continue
		}
		out = append(out, []byte(k))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// put inserts or overwrites a key. Must hold s.mu.
func (s *Store) put(key, value []byte) *object {
	o := s.objects[string(key)]
	if o == nil {
		o = &object{}
		s.objects[string(key)] = o
	}
	o.value = append([]byte(nil), value...)
	if o.value == nil {
		o.value = []byte{}
	}
	o.version++
	return o
}

// putOwned is put for values the caller exclusively owns (freshly
// allocated, or decoded off the wire into a private buffer): the store
// adopts the slice instead of copying it. Stored values are never mutated
// in place — put replaces them wholesale — so adoption is safe whenever
// the caller stops using the buffer.
func (s *Store) putOwned(key, value []byte) *object {
	o := s.objects[string(key)]
	if o == nil {
		o = &object{}
		s.objects[string(key)] = o
	}
	if value == nil {
		value = []byte{}
	}
	o.value = value
	o.version++
	return o
}

// valuePut picks the cheapest safe write for a command's value: commands
// decoded off the wire own their buffers outright (every decode copies),
// so the store adopts them; locally built commands get the defensive copy.
func (s *Store) valuePut(cmd *Command, key, value []byte) *object {
	if cmd.owned {
		return s.putOwned(key, value)
	}
	return s.put(key, value)
}

// Get reads a key outside the command path (used by tests and examples).
func (s *Store) Get(key []byte) (value []byte, version uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.objects[string(key)]
	if !s.alive(o) { // expiry-aware: GetStale must not serve dead values
		return nil, 0, false
	}
	return append([]byte(nil), o.value...), o.version, true
}

// Head returns the LSN of the most recent log entry.
func (s *Store) Head() LSN {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// KeyLSN returns the LSN of the last update to key (0 if never updated).
func (s *Store) KeyLSN(key []byte) LSN {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if o := s.objects[string(key)]; o != nil {
		return o.lsn
	}
	return 0
}

// EntriesSince returns log entries with LSN in (after, head], i.e. the
// suffix a backup sync must replicate.
func (s *Store) EntriesSince(after LSN) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if after >= s.head {
		return nil
	}
	// Log entries are contiguous from LSN 1 at index 0.
	return append([]Entry(nil), s.log[after:]...)
}

// Len returns the number of live keys (including tombstones).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// MigratedObject is one object exported for a shard migration: the exact
// stored state (including tombstones), so the target can reproduce it with
// OpMigrateObject.
type MigratedObject struct {
	Key       []byte
	Value     []byte
	Version   uint64
	Tombstone bool
	// ExpireAt preserves the object's TTL across the handoff (0 = none).
	ExpireAt int64
}

// ExportRange returns every object (live or tombstoned) whose key matches
// pred, for transfer to another shard.
func (s *Store) ExportRange(pred func(key []byte) bool) []MigratedObject {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []MigratedObject
	for k, o := range s.objects {
		if !pred([]byte(k)) {
			continue
		}
		mo := MigratedObject{Key: []byte(k), Version: o.version, Tombstone: o.value == nil, ExpireAt: o.expireAt}
		if !mo.Tombstone {
			mo.Value = append([]byte(nil), o.value...)
		}
		out = append(out, mo)
	}
	return out
}

// DropRange removes every object whose key matches pred from the object
// table and returns how many were dropped. The operation log is left
// intact — it is history, and recovery paths that replay it re-apply the
// same drop from the coordinator's moved-range record.
func (s *Store) DropRange(pred func(key []byte) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.objects {
		if pred([]byte(k)) {
			delete(s.objects, k)
			delete(s.expiry, k)
			n++
		}
	}
	return n
}

// ReplayEntry applies a log entry to a store being rebuilt during recovery.
// Entries must be replayed in LSN order starting from an empty store. The
// object table, per-key LSNs, and log head are all restored.
func (s *Store) ReplayEntry(en *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if en.LSN != s.head+1 {
		return fmt.Errorf("kv: replay gap: entry %d after head %d", en.LSN, s.head)
	}
	if _, _, err := s.exec(en.Cmd); err != nil {
		return err
	}
	s.head = en.LSN
	if !s.replica {
		s.log = append(s.log, *en)
	}
	s.stampKeys(en.Cmd, en.LSN)
	return nil
}
