package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"curp/internal/rifl"
	"curp/internal/rpc"
)

func rid(c, s uint64) rifl.RPCID {
	return rifl.RPCID{Client: rifl.ClientID(c), Seq: rifl.Seq(s)}
}

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	res, lsn, err := s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("1")}, rid(1, 1))
	if err != nil || lsn != 1 || res.Version != 1 {
		t.Fatalf("put: %v lsn=%d res=%+v", err, lsn, res)
	}
	res, lsn, err = s.Apply(&Command{Op: OpGet, Key: []byte("a")}, rid(1, 2))
	if err != nil || lsn != 0 {
		t.Fatalf("get: %v lsn=%d", err, lsn)
	}
	if !res.Found || string(res.Value) != "1" || res.Version != 1 {
		t.Fatalf("get res = %+v", res)
	}
	// Overwrite bumps version.
	res, _, _ = s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("2")}, rid(1, 3))
	if res.Version != 2 {
		t.Fatalf("version = %d", res.Version)
	}
	// Delete leaves a tombstone with a bumped version.
	res, lsn, err = s.Apply(&Command{Op: OpDelete, Key: []byte("a")}, rid(1, 4))
	if err != nil || lsn == 0 || !res.Found || res.Version != 3 {
		t.Fatalf("delete: %v %+v", err, res)
	}
	res, _, _ = s.Apply(&Command{Op: OpGet, Key: []byte("a")}, rid(1, 5))
	if res.Found {
		t.Fatal("deleted key still visible")
	}
	if _, _, ok := s.Get([]byte("a")); ok {
		t.Fatal("Get should miss deleted key")
	}
	// Deleting a missing key is mutating (logged) but Found=false.
	res, lsn, err = s.Apply(&Command{Op: OpDelete, Key: []byte("nope")}, rid(1, 6))
	if err != nil || lsn == 0 || res.Found {
		t.Fatalf("delete missing: %v lsn=%d %+v", err, lsn, res)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore()
	res, lsn, err := s.Apply(&Command{Op: OpGet, Key: []byte("ghost")}, rid(1, 1))
	if err != nil || lsn != 0 || res.Found {
		t.Fatalf("get missing: %v %+v", err, res)
	}
	if s.Head() != 0 {
		t.Fatal("read should not advance log")
	}
}

func TestIncrement(t *testing.T) {
	s := NewStore()
	res, _, err := s.Apply(&Command{Op: OpIncrement, Key: []byte("ctr"), Delta: 5}, rid(1, 1))
	if err != nil || string(res.Value) != "5" {
		t.Fatalf("incr: %v %+v", err, res)
	}
	res, _, err = s.Apply(&Command{Op: OpIncrement, Key: []byte("ctr"), Delta: -2}, rid(1, 2))
	if err != nil || string(res.Value) != "3" {
		t.Fatalf("incr: %v %+v", err, res)
	}
	// Increment of a non-numeric value fails without mutating.
	s.Apply(&Command{Op: OpPut, Key: []byte("str"), Value: []byte("abc")}, rid(1, 3))
	head := s.Head()
	if _, _, err := s.Apply(&Command{Op: OpIncrement, Key: []byte("str"), Delta: 1}, rid(1, 4)); !errors.Is(err, ErrNotCounter) {
		t.Fatalf("err = %v", err)
	}
	if s.Head() != head {
		t.Fatal("failed increment advanced log")
	}
}

func TestCondPut(t *testing.T) {
	s := NewStore()
	// Creating: expect version 0.
	res, lsn, err := s.Apply(&Command{Op: OpCondPut, Key: []byte("k"), Value: []byte("v1"), ExpectVersion: 0}, rid(1, 1))
	if err != nil || !res.Found || lsn == 0 {
		t.Fatalf("condput create: %v %+v", err, res)
	}
	// Wrong expected version: no-op, reports current version.
	res, lsn, err = s.Apply(&Command{Op: OpCondPut, Key: []byte("k"), Value: []byte("v2"), ExpectVersion: 0}, rid(1, 2))
	if err != nil || res.Found || lsn != 0 || res.Version != 1 {
		t.Fatalf("condput stale: %v lsn=%d %+v", err, lsn, res)
	}
	// Correct version succeeds.
	res, _, err = s.Apply(&Command{Op: OpCondPut, Key: []byte("k"), Value: []byte("v2"), ExpectVersion: 1}, rid(1, 3))
	if err != nil || !res.Found || res.Version != 2 {
		t.Fatalf("condput ok: %v %+v", err, res)
	}
	v, _, _ := s.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
}

func TestMultiPutMultiGet(t *testing.T) {
	s := NewStore()
	cmd := &Command{Op: OpMultiPut, Pairs: []KV{
		{Key: []byte("x"), Value: []byte("1")},
		{Key: []byte("y"), Value: []byte("2")},
	}}
	if _, lsn, err := s.Apply(cmd, rid(1, 1)); err != nil || lsn != 1 {
		t.Fatalf("multiput: %v lsn=%d", err, lsn)
	}
	// Both keys share the same last-update LSN.
	if s.KeyLSN([]byte("x")) != 1 || s.KeyLSN([]byte("y")) != 1 {
		t.Fatalf("key lsns = %d %d", s.KeyLSN([]byte("x")), s.KeyLSN([]byte("y")))
	}
	res, _, err := s.Apply(&Command{Op: OpMultiGet, Pairs: []KV{
		{Key: []byte("x")}, {Key: []byte("missing")}, {Key: []byte("y")},
	}}, rid(1, 2))
	if err != nil || len(res.Values) != 3 {
		t.Fatalf("multiget: %v %+v", err, res)
	}
	if string(res.Values[0]) != "1" || res.Values[1] != nil || string(res.Values[2]) != "2" {
		t.Fatalf("values = %q", res.Values)
	}
}

func TestMultiIncr(t *testing.T) {
	s := NewStore()
	cmd := &Command{Op: OpMultiIncr, Pairs: []KV{
		{Key: []byte("a"), Value: []byte("-10")},
		{Key: []byte("b"), Value: []byte("10")},
	}}
	res, lsn, err := s.Apply(cmd, rid(1, 1))
	if err != nil || lsn != 1 {
		t.Fatalf("multiincr: %v lsn=%d", err, lsn)
	}
	if len(res.Values) != 2 || string(res.Values[0]) != "-10" || string(res.Values[1]) != "10" {
		t.Fatalf("values = %q", res.Values)
	}
	// Both keys share the mutation LSN (commutativity footprint).
	if s.KeyLSN([]byte("a")) != 1 || s.KeyLSN([]byte("b")) != 1 {
		t.Fatal("key lsns not stamped")
	}
	// Atomicity on error: a non-counter leg leaves all keys untouched.
	s.Apply(&Command{Op: OpPut, Key: []byte("str"), Value: []byte("x")}, rid(1, 2))
	bad := &Command{Op: OpMultiIncr, Pairs: []KV{
		{Key: []byte("a"), Value: []byte("5")},
		{Key: []byte("str"), Value: []byte("5")},
	}}
	if _, _, err := s.Apply(bad, rid(1, 3)); !errors.Is(err, ErrNotCounter) {
		t.Fatalf("err = %v", err)
	}
	v, _, _ := s.Get([]byte("a"))
	if string(v) != "-10" {
		t.Fatalf("a mutated by failed multiincr: %q", v)
	}
	// Malformed delta rejected.
	if _, _, err := s.Apply(&Command{Op: OpMultiIncr, Pairs: []KV{{Key: []byte("a"), Value: []byte("xyz")}}}, rid(1, 4)); err == nil {
		t.Fatal("bad delta accepted")
	}
	// Replay reproduces the same state.
	b := NewBackup()
	if err := b.Append(s.EntriesSince(0)); err != nil {
		t.Fatal(err)
	}
	r, err := b.RestoreStore()
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ = r.Get([]byte("b"))
	if string(v) != "10" {
		t.Fatalf("replayed b = %q", v)
	}
	if OpMultiIncr.String() != "multiincr" {
		t.Fatal("op name")
	}
}

func TestUnknownOp(t *testing.T) {
	s := NewStore()
	if _, _, err := s.Apply(&Command{Op: CommandOp(99)}, rid(1, 1)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if CommandOp(99).String() != "op(99)" {
		t.Fatal("op string")
	}
}

func TestKeyLSNTracking(t *testing.T) {
	s := NewStore()
	s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("1")}, rid(1, 1))
	s.Apply(&Command{Op: OpPut, Key: []byte("b"), Value: []byte("1")}, rid(1, 2))
	s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("2")}, rid(1, 3))
	if got := s.KeyLSN([]byte("a")); got != 3 {
		t.Fatalf("a lsn = %d", got)
	}
	if got := s.KeyLSN([]byte("b")); got != 2 {
		t.Fatalf("b lsn = %d", got)
	}
	if got := s.KeyLSN([]byte("zzz")); got != 0 {
		t.Fatalf("missing lsn = %d", got)
	}
	if s.Head() != 3 || s.Len() != 2 {
		t.Fatalf("head=%d len=%d", s.Head(), s.Len())
	}
}

func TestEntriesSince(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 5; i++ {
		s.Apply(&Command{Op: OpPut, Key: []byte{byte(i)}, Value: []byte("v")}, rid(1, uint64(i)))
	}
	ents := s.EntriesSince(2)
	if len(ents) != 3 || ents[0].LSN != 3 || ents[2].LSN != 5 {
		t.Fatalf("entries = %+v", ents)
	}
	if s.EntriesSince(5) != nil || s.EntriesSince(9) != nil {
		t.Fatal("empty suffix should be nil")
	}
	all := s.EntriesSince(0)
	if len(all) != 5 {
		t.Fatalf("all = %d", len(all))
	}
}

func TestCommandCodec(t *testing.T) {
	cmds := []*Command{
		{Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		{Op: OpGet, Key: []byte("k")},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpIncrement, Key: []byte("c"), Delta: -7},
		{Op: OpCondPut, Key: []byte("k"), Value: []byte("v2"), ExpectVersion: 9},
		{Op: OpMultiPut, Pairs: []KV{{[]byte("a"), []byte("1")}, {[]byte("b"), []byte("2")}}},
		{Op: OpMultiGet, Pairs: []KV{{Key: []byte("a")}, {Key: []byte("b")}}},
	}
	for _, c := range cmds {
		got, err := DecodeCommand(c.Encode())
		if err != nil {
			t.Fatalf("%v: %v", c.Op, err)
		}
		if got.Op != c.Op || !bytes.Equal(got.Key, c.Key) || !bytes.Equal(got.Value, c.Value) ||
			got.Delta != c.Delta || got.ExpectVersion != c.ExpectVersion || len(got.Pairs) != len(c.Pairs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
		}
		for i := range c.Pairs {
			if !bytes.Equal(got.Pairs[i].Key, c.Pairs[i].Key) || !bytes.Equal(got.Pairs[i].Value, c.Pairs[i].Value) {
				t.Fatalf("pair %d mismatch", i)
			}
		}
	}
	if _, err := DecodeCommand([]byte{1, 2}); err == nil {
		t.Fatal("truncated command accepted")
	}
}

func TestResultCodec(t *testing.T) {
	rs := []*Result{
		{Found: true, Value: []byte("v"), Version: 3},
		{Found: false},
		{Found: true, Values: [][]byte{[]byte("a"), nil, []byte("c")}},
	}
	for _, r := range rs {
		got, err := DecodeResult(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != r.Found || !bytes.Equal(got.Value, r.Value) || got.Version != r.Version || len(got.Values) != len(r.Values) {
			t.Fatalf("mismatch: %+v vs %+v", got, r)
		}
		for i := range r.Values {
			if (got.Values[i] == nil) != (r.Values[i] == nil) || !bytes.Equal(got.Values[i], r.Values[i]) {
				t.Fatalf("values[%d] mismatch: %q vs %q", i, got.Values[i], r.Values[i])
			}
		}
	}
	if _, err := DecodeResult([]byte{}); err == nil {
		t.Fatal("truncated result accepted")
	}
}

func TestCommandCodecQuick(t *testing.T) {
	f := func(key, value []byte, delta int64, ev uint64) bool {
		c := &Command{Op: OpCondPut, Key: key, Value: value, Delta: delta, ExpectVersion: ev}
		got, err := DecodeCommand(c.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value) &&
			got.Delta == delta && got.ExpectVersion == ev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryCodec(t *testing.T) {
	en := &Entry{
		LSN: 7,
		Cmd: &Command{Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		ID:  rid(3, 9),
		Result: &Result{
			Found: true, Version: 2,
		},
	}
	e := rpc.NewEncoder(64)
	en.Marshal(e)
	got, err := UnmarshalEntry(rpc.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 7 || got.ID != rid(3, 9) || string(got.Cmd.Key) != "k" || got.Result.Version != 2 {
		t.Fatalf("entry = %+v", got)
	}
	if _, err := UnmarshalEntry(rpc.NewDecoder([]byte{1})); err == nil {
		t.Fatal("truncated entry accepted")
	}
}

func TestKeyHashes(t *testing.T) {
	single := &Command{Op: OpPut, Key: []byte("k")}
	if len(single.KeyHashes()) != 1 {
		t.Fatal("single key hash count")
	}
	multi := &Command{Op: OpMultiPut, Pairs: []KV{{Key: []byte("a")}, {Key: []byte("b")}}}
	hs := multi.KeyHashes()
	if len(hs) != 2 || hs[0] == hs[1] {
		t.Fatalf("multi hashes = %v", hs)
	}
	if !(&Command{Op: OpGet}).IsReadOnly() || (&Command{Op: OpPut}).IsReadOnly() {
		t.Fatal("IsReadOnly")
	}
	if !(&Command{Op: OpMultiGet}).IsReadOnly() {
		t.Fatal("multiget should be read-only")
	}
}

func TestBackupAppendContiguity(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 6; i++ {
		s.Apply(&Command{Op: OpPut, Key: []byte{byte(i)}, Value: []byte("v")}, rid(1, uint64(i)))
	}
	b := NewBackup()
	if err := b.Append(s.EntriesSince(0)[:3]); err != nil {
		t.Fatal(err)
	}
	if b.SyncedLSN() != 3 {
		t.Fatalf("synced = %d", b.SyncedLSN())
	}
	// Overlapping retry is idempotent.
	if err := b.Append(s.EntriesSince(1)[:4]); err != nil {
		t.Fatal(err)
	}
	if b.SyncedLSN() != 5 {
		t.Fatalf("synced after overlap = %d", b.SyncedLSN())
	}
	// A gap is rejected.
	gap := s.EntriesSince(5) // entry 6 comes right after 5 — fine
	if err := b.Append(gap); err != nil {
		t.Fatal(err)
	}
	b2 := NewBackup()
	if err := b2.Append(s.EntriesSince(2)); err == nil {
		t.Fatal("gap accepted")
	}
	if len(b.Entries()) != 6 {
		t.Fatalf("entries = %d", len(b.Entries()))
	}
	b.Reset()
	if b.SyncedLSN() != 0 || len(b.Entries()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestBackupRestoreStore(t *testing.T) {
	s := NewStore()
	s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("1")}, rid(1, 1))
	s.Apply(&Command{Op: OpPut, Key: []byte("b"), Value: []byte("2")}, rid(1, 2))
	s.Apply(&Command{Op: OpDelete, Key: []byte("a")}, rid(1, 3))
	s.Apply(&Command{Op: OpIncrement, Key: []byte("c"), Delta: 41}, rid(2, 1))
	s.Apply(&Command{Op: OpIncrement, Key: []byte("c"), Delta: 1}, rid(2, 2))

	b := NewBackup()
	if err := b.Append(s.EntriesSince(0)); err != nil {
		t.Fatal(err)
	}
	restored, err := b.RestoreStore()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := restored.Get([]byte("a")); ok {
		t.Fatal("deleted key revived")
	}
	v, ver, ok := restored.Get([]byte("b"))
	if !ok || string(v) != "2" || ver != 1 {
		t.Fatalf("b = %q v%d ok=%v", v, ver, ok)
	}
	v, _, _ = restored.Get([]byte("c"))
	if string(v) != "42" {
		t.Fatalf("c = %q", v)
	}
	if restored.Head() != s.Head() {
		t.Fatalf("head %d vs %d", restored.Head(), s.Head())
	}
	// Per-key LSNs restored too.
	if restored.KeyLSN([]byte("c")) != s.KeyLSN([]byte("c")) {
		t.Fatal("key lsn not restored")
	}
	// The restored log carries RIFL IDs and results for tracker rebuild.
	ents := restored.EntriesSince(0)
	if len(ents) != 5 || ents[3].ID != rid(2, 1) {
		t.Fatalf("restored entries = %d", len(ents))
	}
}

func TestReplayEntryGap(t *testing.T) {
	s := NewStore()
	en := &Entry{LSN: 5, Cmd: &Command{Op: OpPut, Key: []byte("k"), Value: []byte("v")}, Result: &Result{}}
	if err := s.ReplayEntry(en); err == nil {
		t.Fatal("gap replay accepted")
	}
}

func TestStoreEquivalenceProperty(t *testing.T) {
	// Property: replaying a store's log into a fresh store yields the same
	// observable state (same values and versions for all keys).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
		for i := 0; i < 200; i++ {
			k := keys[rng.Intn(len(keys))]
			var cmd *Command
			switch rng.Intn(4) {
			case 0:
				cmd = &Command{Op: OpPut, Key: k, Value: []byte(fmt.Sprint(i))}
			case 1:
				cmd = &Command{Op: OpDelete, Key: k}
			case 2:
				cmd = &Command{Op: OpCondPut, Key: k, Value: []byte("c"), ExpectVersion: uint64(rng.Intn(5))}
			case 3:
				cmd = &Command{Op: OpGet, Key: k}
			}
			s.Apply(cmd, rid(1, uint64(i+1)))
		}
		b := NewBackup()
		if err := b.Append(s.EntriesSince(0)); err != nil {
			return false
		}
		r, err := b.RestoreStore()
		if err != nil {
			return false
		}
		for _, k := range keys {
			v1, ver1, ok1 := s.Get(k)
			v2, ver2, ok2 := r.Get(k)
			if ok1 != ok2 || ver1 != ver2 || !bytes.Equal(v1, v2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrentApply(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := []byte{byte(g)}
			for i := 0; i < 200; i++ {
				if _, _, err := s.Apply(&Command{Op: OpIncrement, Key: key, Delta: 1}, rid(uint64(g+1), uint64(i+1))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Head() != 8*200 {
		t.Fatalf("head = %d", s.Head())
	}
	for g := 0; g < 8; g++ {
		v, _, _ := s.Get([]byte{byte(g)})
		if string(v) != "200" {
			t.Fatalf("counter %d = %q", g, v)
		}
	}
}

func TestGetCopiesValue(t *testing.T) {
	s := NewStore()
	s.Apply(&Command{Op: OpPut, Key: []byte("k"), Value: []byte("abc")}, rid(1, 1))
	v, _, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _, _ := s.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatal("Get aliased internal buffer")
	}
	res, _, _ := s.Apply(&Command{Op: OpGet, Key: []byte("k")}, rid(1, 2))
	res.Value[0] = 'Y'
	v3, _, _ := s.Get([]byte("k"))
	if string(v3) != "abc" {
		t.Fatal("Apply(Get) aliased internal buffer")
	}
}

func BenchmarkStorePut(b *testing.B) {
	s := NewStore()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key%d", i%10000))
		s.Apply(&Command{Op: OpPut, Key: key, Value: val}, rid(1, uint64(i+1)))
	}
}

// TestMigrateObjectInstall: OpMigrateObject reproduces exported state
// verbatim — value, version, and tombstones — and the install survives a
// log replay (the path a target backup and a target recovery both take).
func TestMigrateObjectInstall(t *testing.T) {
	src := NewStore()
	if _, _, err := src.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("v1")}, rid(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("v2")}, rid(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Apply(&Command{Op: OpDelete, Key: []byte("gone")}, rid(1, 3)); err != nil {
		t.Fatal(err)
	}
	all := func([]byte) bool { return true }
	exported := src.ExportRange(all)
	if len(exported) != 2 {
		t.Fatalf("exported %d objects, want 2 (live + tombstone)", len(exported))
	}

	dst := NewStore()
	for _, o := range exported {
		cmd := &Command{Op: OpMigrateObject, Key: o.Key, Value: o.Value, ExpectVersion: o.Version}
		if o.Tombstone {
			cmd.Delta = 1
		}
		if _, lsn, err := dst.Apply(cmd, rifl.RPCID{}); err != nil || lsn == 0 {
			t.Fatalf("install %q: lsn=%d err=%v", o.Key, lsn, err)
		}
	}
	v, ver, ok := dst.Get([]byte("a"))
	if !ok || string(v) != "v2" || ver != 2 {
		t.Fatalf("installed object = %q v%d ok=%v, want v2/2", v, ver, ok)
	}
	if _, _, ok := dst.Get([]byte("gone")); ok {
		t.Fatal("tombstone installed as a live object")
	}
	// Tombstone keeps its version for conditional writes.
	res, _, err := dst.Apply(&Command{Op: OpGet, Key: []byte("gone")}, rifl.RPCID{})
	if err != nil || res.Found || res.Version != 1 {
		t.Fatalf("tombstone read = %+v, %v", res, err)
	}

	// Replaying the install log (backup materialization) reproduces it.
	replica := NewStore()
	for _, en := range dst.EntriesSince(0) {
		en := en
		if err := replica.ReplayEntry(&en); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if v, ver, ok := replica.Get([]byte("a")); !ok || string(v) != "v2" || ver != 2 {
		t.Fatalf("replayed install = %q v%d ok=%v", v, ver, ok)
	}

	// DropRange removes what ExportRange saw, and nothing else.
	if n := dst.DropRange(func(k []byte) bool { return string(k) == "a" }); n != 1 {
		t.Fatalf("DropRange removed %d, want 1", n)
	}
	if _, _, ok := dst.Get([]byte("a")); ok {
		t.Fatal("dropped key still readable")
	}
}

// TestMigrateRecordCarriesResult: an OpMigrateRecord entry preserves the
// original result bytes and key hashes through the log, so a recovered
// target still answers migrated duplicates with the original outcome.
func TestMigrateRecordCarriesResult(t *testing.T) {
	orig := &Result{Found: true, Value: []byte("42"), Version: 7}
	cmd := &Command{Op: OpMigrateRecord, Value: orig.Encode(), Hashes: []uint64{123, 456}}
	s := NewStore()
	res, lsn, err := s.Apply(cmd, rid(9, 5))
	if err != nil || lsn == 0 {
		t.Fatalf("apply migrate-record: lsn=%d err=%v", lsn, err)
	}
	if !res.Found || string(res.Value) != "42" || res.Version != 7 {
		t.Fatalf("decoded result = %+v", res)
	}
	if s.Len() != 0 {
		t.Fatalf("migrate-record mutated %d objects", s.Len())
	}
	entries := s.EntriesSince(0)
	if len(entries) != 1 || entries[0].ID != rid(9, 5) {
		t.Fatalf("entries = %+v", entries)
	}
	// Codec round-trip keeps the hash override.
	e := rpc.NewEncoder(64)
	entries[0].Marshal(e)
	back, err := UnmarshalEntry(rpc.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hs := back.Cmd.KeyHashes(); len(hs) != 2 || hs[0] != 123 || hs[1] != 456 {
		t.Fatalf("round-tripped hashes = %v", hs)
	}
}
