package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"curp/internal/rifl"
)

// txnCmd builds a transactional command.
func txnCmd(op CommandOp, t *TxnCommand) *Command { return &Command{Op: op, Txn: t} }

func TestTxnPrepareDecideCommit(t *testing.T) {
	s := NewStore()
	seed := func(key string, val string) {
		if _, _, err := s.Apply(&Command{Op: OpPut, Key: []byte(key), Value: []byte(val)}, rifl.RPCID{Client: 1, Seq: 1}); err != nil {
			t.Fatal(err)
		}
	}
	seed("a", "5")

	id := rifl.RPCID{Client: 9, Seq: 1}
	prep := &TxnCommand{
		ID:     id,
		Home:   TxnHome{MasterID: 1, Addr: "m", KeyHash: 42},
		Reads:  []TxnRead{{Key: []byte("a"), Version: 1}},
		Writes: []TxnWrite{{Op: OpIncrement, Key: []byte("a"), Delta: 2}, {Op: OpPut, Key: []byte("b"), Value: []byte("x")}},
	}
	res, lsn, err := s.Apply(txnCmd(OpTxnPrepare, prep), rifl.RPCID{Client: 2, Seq: 1})
	if err != nil || !res.Found || lsn == 0 {
		t.Fatalf("prepare: res=%+v lsn=%d err=%v", res, lsn, err)
	}
	if s.LockCount() != 2 {
		t.Fatalf("locks = %d, want 2", s.LockCount())
	}

	// Locked keys block plain operations with a typed, resolvable error.
	_, _, err = s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("no")}, rifl.RPCID{Client: 3, Seq: 1})
	var lerr *LockedError
	if !errors.As(err, &lerr) || lerr.Txn != id || lerr.Home.Addr != "m" {
		t.Fatalf("plain op on locked key: %v", err)
	}
	// The preparing transaction itself is not blocked (re-prepare no-op).
	res, _, err = s.Apply(txnCmd(OpTxnPrepare, prep), rifl.RPCID{Client: 2, Seq: 2})
	if err != nil || !res.Found {
		t.Fatalf("re-prepare: %+v %v", res, err)
	}

	// Commit applies the stash and releases every lock.
	res, lsn, err = s.Apply(txnCmd(OpTxnDecide, &TxnCommand{ID: id, Commit: true}), rifl.RPCID{Client: 2, Seq: 3})
	if err != nil || !res.Found || lsn == 0 {
		t.Fatalf("decide: res=%+v lsn=%d err=%v", res, lsn, err)
	}
	if s.LockCount() != 0 {
		t.Fatalf("locks after commit = %d", s.LockCount())
	}
	if v, _, _ := s.Get([]byte("a")); string(v) != "7" {
		t.Fatalf("a = %q, want 7", v)
	}
	if v, _, _ := s.Get([]byte("b")); string(v) != "x" {
		t.Fatalf("b = %q, want x", v)
	}
}

func TestTxnPrepareValidationAbort(t *testing.T) {
	s := NewStore()
	if _, _, err := s.Apply(&Command{Op: OpPut, Key: []byte("a"), Value: []byte("text")}, rifl.RPCID{Client: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Stale read version → vote abort, no locks, nothing logged.
	res, lsn, err := s.Apply(txnCmd(OpTxnPrepare, &TxnCommand{
		ID:    rifl.RPCID{Client: 9, Seq: 1},
		Reads: []TxnRead{{Key: []byte("a"), Version: 99}},
	}), rifl.RPCID{Client: 2, Seq: 1})
	if err != nil || res.Found || lsn != 0 || s.LockCount() != 0 {
		t.Fatalf("stale-read prepare: res=%+v lsn=%d locks=%d err=%v", res, lsn, s.LockCount(), err)
	}
	// Increment over a non-counter → vote abort even mid-write-set.
	res, _, err = s.Apply(txnCmd(OpTxnPrepare, &TxnCommand{
		ID:     rifl.RPCID{Client: 9, Seq: 2},
		Writes: []TxnWrite{{Op: OpIncrement, Key: []byte("a"), Delta: 1}},
	}), rifl.RPCID{Client: 2, Seq: 2})
	if err != nil || res.Found || s.LockCount() != 0 {
		t.Fatalf("non-counter prepare: res=%+v locks=%d err=%v", res, s.LockCount(), err)
	}
	// ... but a Put earlier in the same write-set legalizes it.
	res, _, err = s.Apply(txnCmd(OpTxnApply, &TxnCommand{
		Writes: []TxnWrite{
			{Op: OpPut, Key: []byte("a"), Value: []byte("5")},
			{Op: OpIncrement, Key: []byte("a"), Delta: 1},
		},
	}), rifl.RPCID{Client: 2, Seq: 3})
	if err != nil || !res.Found {
		t.Fatalf("put-then-incr apply: res=%+v err=%v", res, err)
	}
	if v, _, _ := s.Get([]byte("a")); string(v) != "6" {
		t.Fatalf("a = %q, want 6", v)
	}
}

// modelObj mirrors one key of the store in the property test's model.
type modelObj struct {
	val []byte // nil = tombstone/missing
	ver uint64
}

// TestTxnLockHygieneProperty is the quick-check-style lock-hygiene test:
// random interleavings of prepare / decide(commit|abort) / apply / plain
// operations must leave (a) no key locked once every transaction is
// decided, (b) values and versions exactly matching a sequential model,
// and (c) a log whose replay onto a fresh store reproduces the same state
// — i.e. no version skew and no lock leakage on any path, including
// recovery.
func TestTxnLockHygieneProperty(t *testing.T) {
	for round := 0; round < 40; round++ {
		seed := int64(0xC0FFEE + round)
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		model := make(map[string]*modelObj)
		locks := make(map[string]rifl.RPCID) // model lock table
		type modelTxn struct {
			id     rifl.RPCID
			writes []TxnWrite
			keys   []string
		}
		prepared := make(map[rifl.RPCID]*modelTxn)
		var outstanding []rifl.RPCID
		nextSeq := rifl.Seq(1)
		nextEntry := rifl.Seq(1)
		entryID := func() rifl.RPCID {
			nextEntry++
			return rifl.RPCID{Client: 99, Seq: nextEntry}
		}
		keyName := func() string { return fmt.Sprintf("k%d", rng.Intn(6)) }

		get := func(k string) *modelObj {
			o := model[k]
			if o == nil {
				o = &modelObj{}
				model[k] = o
			}
			return o
		}
		modelApplyWrites := func(writes []TxnWrite) {
			for _, w := range writes {
				o := get(string(w.Key))
				switch w.Op {
				case OpDelete:
					o.val = nil
					o.ver++
				case OpIncrement:
					var cur int64
					if o.val != nil {
						cur = parseCounter(o.val)
					}
					o.val = formatCounter(cur + w.Delta)
					o.ver++
				default:
					o.val = append([]byte(nil), w.Value...)
					if o.val == nil {
						o.val = []byte{}
					}
					o.ver++
				}
			}
		}
		modelValidate := func(tc *TxnCommand) bool {
			for _, r := range tc.Reads {
				var cur uint64
				if o := model[string(r.Key)]; o != nil {
					cur = o.ver
				}
				if cur != r.Version {
					return false
				}
			}
			sim := make(map[string]*modelObj)
			cur := func(k string) *modelObj {
				if o, ok := sim[k]; ok {
					return o
				}
				if o := model[k]; o != nil {
					return &modelObj{val: o.val, ver: o.ver}
				}
				return &modelObj{}
			}
			for _, w := range tc.Writes {
				o := cur(string(w.Key))
				switch w.Op {
				case OpDelete:
					o.val = nil
				case OpIncrement:
					if o.val != nil && !isCounter(o.val) {
						return false
					}
					var c int64
					if o.val != nil {
						c = parseCounter(o.val)
					}
					o.val = formatCounter(c + w.Delta)
				default:
					o.val = append([]byte{}, w.Value...)
				}
				sim[string(w.Key)] = o
			}
			return true
		}
		lockedByOther := func(keys []string, self rifl.RPCID) bool {
			for _, k := range keys {
				if id, ok := locks[k]; ok && id != self {
					return true
				}
			}
			return false
		}

		decide := func(id rifl.RPCID, commit bool) {
			res, _, err := s.Apply(txnCmd(OpTxnDecide, &TxnCommand{ID: id, Commit: commit}), entryID())
			if err != nil {
				t.Fatalf("seed %d: decide: %v", seed, err)
			}
			if res.Found != commit {
				t.Fatalf("seed %d: decide outcome %v, want %v", seed, res.Found, commit)
			}
			mt := prepared[id]
			if mt == nil {
				return
			}
			if commit {
				modelApplyWrites(mt.writes)
			}
			for _, k := range mt.keys {
				if locks[k] == id {
					delete(locks, k)
				}
			}
			delete(prepared, id)
			for i, oid := range outstanding {
				if oid == id {
					outstanding = append(outstanding[:i], outstanding[i+1:]...)
					break
				}
			}
		}

		randomWrites := func() []TxnWrite {
			n := 1 + rng.Intn(3)
			out := make([]TxnWrite, 0, n)
			for i := 0; i < n; i++ {
				k := []byte(keyName())
				switch rng.Intn(3) {
				case 0:
					out = append(out, TxnWrite{Op: OpPut, Key: k, Value: []byte(fmt.Sprint(rng.Intn(50)))})
				case 1:
					out = append(out, TxnWrite{Op: OpIncrement, Key: k, Delta: int64(rng.Intn(9) - 4)})
				default:
					out = append(out, TxnWrite{Op: OpDelete, Key: k})
				}
			}
			return out
		}
		randomReads := func() []TxnRead {
			if rng.Intn(2) == 0 {
				return nil
			}
			k := keyName()
			var ver uint64
			if o := model[k]; o != nil {
				ver = o.ver
			}
			if rng.Intn(5) == 0 {
				ver += 1 + uint64(rng.Intn(3)) // deliberately stale: abort vote
			}
			return []TxnRead{{Key: []byte(k), Version: ver}}
		}

		for step := 0; step < 120; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // prepare a new transaction
				nextSeq++
				tc := &TxnCommand{
					ID:     rifl.RPCID{Client: 7, Seq: nextSeq},
					Home:   TxnHome{MasterID: 1, Addr: "h", KeyHash: 1},
					Reads:  randomReads(),
					Writes: randomWrites(),
				}
				var keys []string
				seen := map[string]bool{}
				for _, k := range tc.Keys() {
					if !seen[string(k)] {
						seen[string(k)] = true
						keys = append(keys, string(k))
					}
				}
				res, _, err := s.Apply(txnCmd(OpTxnPrepare, tc), entryID())
				if lockedByOther(keys, tc.ID) {
					var lerr *LockedError
					if !errors.As(err, &lerr) {
						t.Fatalf("seed %d step %d: prepare on locked keys: %v", seed, step, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d step %d: prepare: %v", seed, step, err)
				}
				want := modelValidate(tc)
				if res.Found != want {
					t.Fatalf("seed %d step %d: prepare vote %v, model says %v", seed, step, res.Found, want)
				}
				if !want {
					continue
				}
				mt := &modelTxn{id: tc.ID, writes: tc.Writes, keys: keys}
				prepared[tc.ID] = mt
				outstanding = append(outstanding, tc.ID)
				for _, k := range keys {
					locks[k] = tc.ID
				}
			case 3, 4: // decide an outstanding transaction
				if len(outstanding) == 0 {
					continue
				}
				decide(outstanding[rng.Intn(len(outstanding))], rng.Intn(2) == 0)
			case 5: // single-shard atomic apply
				tc := &TxnCommand{Reads: randomReads(), Writes: randomWrites()}
				var keys []string
				for _, k := range tc.Keys() {
					keys = append(keys, string(k))
				}
				res, _, err := s.Apply(txnCmd(OpTxnApply, tc), entryID())
				if lockedByOther(keys, rifl.RPCID{}) {
					var lerr *LockedError
					if !errors.As(err, &lerr) {
						t.Fatalf("seed %d step %d: apply on locked keys: %v", seed, step, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d step %d: apply: %v", seed, step, err)
				}
				if want := modelValidate(tc); res.Found != want {
					t.Fatalf("seed %d step %d: apply validation %v, model says %v", seed, step, res.Found, want)
				} else if want {
					modelApplyWrites(tc.Writes)
				}
			default: // plain single-key traffic
				k := keyName()
				var cmd *Command
				switch rng.Intn(3) {
				case 0:
					cmd = &Command{Op: OpPut, Key: []byte(k), Value: []byte(fmt.Sprint(rng.Intn(50)))}
				case 1:
					cmd = &Command{Op: OpIncrement, Key: []byte(k), Delta: 1}
				default:
					cmd = &Command{Op: OpDelete, Key: []byte(k)}
				}
				_, _, err := s.Apply(cmd, entryID())
				if _, lk := locks[k]; lk {
					var lerr *LockedError
					if !errors.As(err, &lerr) {
						t.Fatalf("seed %d step %d: plain op on locked %q: %v", seed, step, k, err)
					}
					continue
				}
				if err != nil {
					if cmd.Op == OpIncrement && errors.Is(err, ErrNotCounter) {
						continue // incrementing a random text value; model unchanged
					}
					t.Fatalf("seed %d step %d: plain %v: %v", seed, step, cmd.Op, err)
				}
				o := get(k)
				switch cmd.Op {
				case OpPut:
					o.val = append([]byte(nil), cmd.Value...)
					o.ver++
				case OpIncrement:
					var cur int64
					if o.val != nil {
						cur = parseCounter(o.val)
					}
					o.val = formatCounter(cur + 1)
					o.ver++
				case OpDelete:
					// Deletes always bump the version (missing keys get a
					// tombstone at version 1).
					o.val = nil
					o.ver++
				}
			}
		}

		// Settle every outstanding transaction — the hygiene invariant is
		// "no decision pending ⇒ no lock held".
		for len(outstanding) > 0 {
			decide(outstanding[0], rng.Intn(2) == 0)
		}
		if n := s.LockCount(); n != 0 {
			t.Fatalf("seed %d: %d keys still locked after all decisions", seed, n)
		}

		check := func(st *Store, which string) {
			for k, o := range model {
				v, ver, ok := st.Get([]byte(k))
				if o.val == nil {
					if ok {
						t.Fatalf("seed %d: %s: %q = %q, model says deleted/missing", seed, which, k, v)
					}
					continue
				}
				if !ok || !bytes.Equal(v, o.val) || ver != o.ver {
					t.Fatalf("seed %d: %s: %q = %q@%d, model %q@%d", seed, which, k, v, ver, o.val, o.ver)
				}
			}
		}
		check(s, "live store")

		// Replay fidelity: rebuilding from the log (the recovery path) must
		// reproduce the same objects, versions, and an empty lock table.
		r := NewStore()
		for _, en := range s.EntriesSince(0) {
			if err := r.ReplayEntry(&en); err != nil {
				t.Fatalf("seed %d: replay: %v", seed, err)
			}
		}
		if n := r.LockCount(); n != 0 {
			t.Fatalf("seed %d: replay left %d locks", seed, n)
		}
		check(r, "replayed store")
	}
}

// TestTxnForgetDecision: the decision-record GC's storage half — a forget
// prunes an existing record (logged, so replay re-prunes), is a no-op on
// missing records, and survives a full log replay with the same outcome.
func TestTxnForgetDecision(t *testing.T) {
	s := NewStore()
	id := rifl.RPCID{Client: 9, Seq: 1}
	record := txnCmd(OpTxnDecide, &TxnCommand{
		ID: id, Commit: true, HomeRecord: true,
		Home: TxnHome{MasterID: 1, Addr: "m", KeyHash: 42},
	})
	if _, _, err := s.Apply(record, id); err != nil {
		t.Fatal(err)
	}
	if s.DecisionCount() != 1 {
		t.Fatalf("decisions = %d, want 1", s.DecisionCount())
	}

	forget := txnCmd(OpTxnForget, &TxnCommand{ID: id, HomeRecord: true, Home: TxnHome{KeyHash: 42}})
	res, lsn, err := s.Apply(forget, rifl.RPCID{Client: 9, Seq: 2})
	if err != nil || !res.Found || lsn == 0 {
		t.Fatalf("forget: res=%+v lsn=%d err=%v", res, lsn, err)
	}
	if s.DecisionCount() != 0 {
		t.Fatalf("decisions = %d after forget, want 0", s.DecisionCount())
	}
	if commit, known := s.TxnDecision(id); known || commit {
		t.Fatal("forgotten decision still resolvable")
	}

	// Forgetting again (or a never-recorded ID) mutates nothing.
	res, lsn, err = s.Apply(forget, rifl.RPCID{Client: 9, Seq: 3})
	if err != nil || res.Found || lsn != 0 {
		t.Fatalf("duplicate forget: res=%+v lsn=%d err=%v", res, lsn, err)
	}

	// Replay fidelity: a recovered store replays record-then-forget and
	// ends with an empty decision table too.
	r := NewStore()
	for _, en := range s.EntriesSince(0) {
		en := en
		if err := r.ReplayEntry(&en); err != nil {
			t.Fatal(err)
		}
	}
	if r.DecisionCount() != 0 {
		t.Fatalf("replayed decisions = %d, want 0", r.DecisionCount())
	}
	if _, _, err := s.Apply(txnCmd(OpTxnForget, nil), rifl.RPCID{Client: 9, Seq: 4}); err == nil {
		t.Fatal("forget without txn payload accepted")
	}
}
