package kv

import (
	"fmt"
	"sync"
)

// Backup is the storage half of one backup server: an ordered, contiguous
// copy of the master's log. The paper's backups asynchronously flush to
// disk; here durability is the process outliving the master, which is the
// property recovery tests exercise. Safe for concurrent use.
type Backup struct {
	mu      sync.Mutex
	entries []Entry
	synced  LSN
}

// NewBackup returns an empty backup.
func NewBackup() *Backup {
	return &Backup{}
}

// Append stores entries, which must directly extend the current log
// (entries[0].LSN == synced+1, contiguous). Replays of already-stored
// prefixes are ignored, so masters can safely retry syncs.
func (b *Backup) Append(entries []Entry) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, en := range entries {
		switch {
		case en.LSN <= b.synced:
			continue // duplicate from a retried sync
		case en.LSN == b.synced+1:
			b.entries = append(b.entries, en)
			b.synced = en.LSN
		default:
			return fmt.Errorf("kv: backup gap: entry %d after synced %d", en.LSN, b.synced)
		}
	}
	return nil
}

// SyncedLSN returns the highest contiguous LSN stored.
func (b *Backup) SyncedLSN() LSN {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.synced
}

// Entries returns a copy of the stored log, for master recovery.
func (b *Backup) Entries() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Entry(nil), b.entries...)
}

// Reset clears the backup (used when a backup is reassigned).
func (b *Backup) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = nil
	b.synced = 0
}

// RestoreStore materializes a fresh Store (and the data needed to rebuild
// a RIFL tracker) from the backup's log, the first step of master recovery
// (§3.3: "restore data from one of the backups").
func (b *Backup) RestoreStore() (*Store, error) {
	entries := b.Entries()
	s := NewStore()
	for i := range entries {
		if err := s.ReplayEntry(&entries[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}
