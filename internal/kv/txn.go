package kv

// This file is the storage half of the cross-shard transaction subsystem
// (internal/txn): the wire types of the three transactional commands, the
// per-key lock metadata a prepare installs, and the decision table that
// anchors a transaction's outcome on its home shard.
//
// The protocol is a client-coordinated two-phase commit over Sinfonia-style
// mini-transactions: a transaction buffers reads (with the versions it saw)
// and writes, then
//
//   - OpTxnApply executes a SINGLE-shard transaction atomically in one log
//     entry — validate every read's version, then apply every write — so it
//     rides CURP's normal update path: recorded on witnesses, speculative
//     when it commutes with the unsynced window (1 RTT), synced otherwise.
//     No locks are ever taken.
//   - OpTxnPrepare is phase one of the cross-shard path, executed on each
//     participant shard: validate the shard's read versions, then lock every
//     touched key and stash the shard's writes. The prepare is a log entry,
//     so a participant crash recovers its locks and pending writes from the
//     backup log.
//   - OpTxnDecide is phase two: on the transaction's HOME shard it records
//     the commit/abort decision in the decision table (the transaction's
//     durability point, RIFL-tracked so a duplicate decide returns the first
//     outcome); on each participant it applies the stashed writes (commit)
//     or discards them (abort) and releases the locks.
//
// An operation that hits a foreign lock fails with *LockedError, which
// carries the owning transaction and its home coordinates so the master can
// resolve an orphaned prepare (coordinator death) by asking the home shard —
// recording an abort there by default if no decision exists yet.

import (
	"fmt"
	"strconv"
	"time"

	"curp/internal/rifl"
	"curp/internal/rpc"
	"curp/internal/witness"
)

// TxnWrite is one buffered write of a transaction: a Put, Delete, or
// Increment applied atomically at commit.
type TxnWrite struct {
	Op    CommandOp // OpPut, OpDelete, or OpIncrement
	Key   []byte
	Value []byte
	Delta int64
}

// TxnRead is one read-set entry: the version the transaction observed, to
// be revalidated at prepare/apply time. Version 0 means the key did not
// exist when read.
type TxnRead struct {
	Key     []byte
	Version uint64
}

// TxnHome locates a transaction's decision record: the master of the shard
// owning the transaction's home key, and the home key's hash (the decision
// record's commutativity footprint, so it migrates with the key's range).
type TxnHome struct {
	MasterID uint64
	Addr     string
	KeyHash  uint64
}

// TxnCommand is the transactional payload of OpTxnPrepare / OpTxnDecide /
// OpTxnApply.
type TxnCommand struct {
	// ID is the transaction's identity: the RIFL ID of the decide RPC that
	// records the outcome on the home shard. Prepares carry it so
	// participants know which decision to look up; OpTxnApply leaves it
	// zero (single-shard transactions need no decision record).
	ID rifl.RPCID
	// Commit is the decide outcome (true = apply the prepared writes).
	Commit bool
	// HomeRecord marks a decide that RECORDS the decision (home shard)
	// rather than applying a prepared transaction (participant).
	HomeRecord bool
	// Home locates the decision record; set on prepares (so lock-timeout
	// resolution can find it) and home-record decides (Home.KeyHash keys
	// the decision's migration export).
	Home TxnHome
	// Reads is the read-set to validate (prepare, apply).
	Reads []TxnRead
	// Writes is the write-set (prepare stashes them, apply runs them).
	Writes []TxnWrite
}

// marshal appends the txn payload's wire form to e.
func (t *TxnCommand) marshal(e *rpc.Encoder) {
	e.U64(uint64(t.ID.Client))
	e.U64(uint64(t.ID.Seq))
	e.Bool(t.Commit)
	e.Bool(t.HomeRecord)
	e.U64(t.Home.MasterID)
	e.String(t.Home.Addr)
	e.U64(t.Home.KeyHash)
	e.U32(uint32(len(t.Reads)))
	for _, r := range t.Reads {
		e.Bytes32(r.Key)
		e.U64(r.Version)
	}
	e.U32(uint32(len(t.Writes)))
	for _, w := range t.Writes {
		e.U8(uint8(w.Op))
		e.Bytes32(w.Key)
		e.Bytes32(w.Value)
		e.I64(w.Delta)
	}
}

// unmarshalTxnCommand decodes a txn payload from d.
func unmarshalTxnCommand(d *rpc.Decoder) *TxnCommand {
	t := &TxnCommand{
		ID:         rifl.RPCID{Client: rifl.ClientID(d.U64()), Seq: rifl.Seq(d.U64())},
		Commit:     d.Bool(),
		HomeRecord: d.Bool(),
	}
	t.Home.MasterID = d.U64()
	t.Home.Addr = d.String()
	t.Home.KeyHash = d.U64()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		t.Reads = append(t.Reads, TxnRead{Key: d.BytesCopy32(), Version: d.U64()})
	}
	n = d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		t.Writes = append(t.Writes, TxnWrite{
			Op:    CommandOp(d.U8()),
			Key:   d.BytesCopy32(),
			Value: d.BytesCopy32(),
			Delta: d.I64(),
		})
	}
	return t
}

// KeyHashes returns the commutativity footprint of the transactional
// payload: every read and write key. Home-record decides touch only the
// home key hash.
func (t *TxnCommand) KeyHashes() []uint64 {
	if t.HomeRecord {
		return []uint64{t.Home.KeyHash}
	}
	hs := make([]uint64, 0, len(t.Reads)+len(t.Writes))
	for _, r := range t.Reads {
		hs = append(hs, witness.KeyHash(r.Key))
	}
	for _, w := range t.Writes {
		hs = append(hs, witness.KeyHash(w.Key))
	}
	return hs
}

// Keys returns every key the transactional payload touches (reads then
// writes, duplicates preserved).
func (t *TxnCommand) Keys() [][]byte {
	keys := make([][]byte, 0, len(t.Reads)+len(t.Writes))
	for _, r := range t.Reads {
		keys = append(keys, r.Key)
	}
	for _, w := range t.Writes {
		keys = append(keys, w.Key)
	}
	return keys
}

// LockedError reports an operation blocked by another transaction's
// prepared lock. It is retryable: the lock disappears when the owning
// transaction's decision arrives (or lock-timeout resolution forces one).
type LockedError struct {
	// Txn is the lock-holding transaction.
	Txn rifl.RPCID
	// Home locates the holder's decision record, for resolution.
	Home TxnHome
	// Age is how long the lock has been held; masters resolve locks older
	// than their timeout.
	Age time.Duration
}

// Error implements error.
func (e *LockedError) Error() string {
	return fmt.Sprintf("kv: key locked by txn %v for %v (home master %d)", e.Txn, e.Age, e.Home.MasterID)
}

// preparedTxn is a participant-side prepared transaction: the lock state of
// its keys and the writes to run if the decision is commit.
type preparedTxn struct {
	id     rifl.RPCID
	home   TxnHome
	writes []TxnWrite
	keys   []string // every locked key
	since  time.Time
}

// txnDecision is one home-shard decision record. homeHash keys its
// migration export (the decision moves with the home key's range).
type txnDecision struct {
	commit   bool
	homeHash uint64
}

// TxnDecisionRecord is the exported form of a decision record (shard
// migration ships these with the home key's range so participants resolving
// an orphaned prepare keep finding the outcome after a rebalance).
type TxnDecisionRecord struct {
	ID       rifl.RPCID
	Commit   bool
	HomeHash uint64
}

// LockedTxn describes one prepared transaction currently holding locks
// (migration uses it to resolve in-flight transactions before exporting a
// range).
type LockedTxn struct {
	ID   rifl.RPCID
	Home TxnHome
}

// TxnTrace, when set, receives debug traces of transactional state
// transitions (tests only).
var TxnTrace func(format string, args ...any)

// lockedBy returns the prepared transaction holding key, or nil.
// Must hold s.mu.
func (s *Store) lockedBy(key []byte) *preparedTxn {
	if len(s.locks) == 0 {
		return nil
	}
	return s.locks[string(key)]
}

// lockConflict returns a *LockedError if any of keys is locked by a
// transaction other than self (zero self = any lock conflicts). Must hold
// s.mu.
func (s *Store) lockConflict(self rifl.RPCID, keys ...[]byte) error {
	if len(s.locks) == 0 {
		return nil
	}
	for _, k := range keys {
		if p := s.locks[string(k)]; p != nil && p.id != self {
			return &LockedError{Txn: p.id, Home: p.home, Age: time.Since(p.since)}
		}
	}
	return nil
}

// cmdLockConflict checks a non-transactional command's keys against the
// lock table. Must hold s.mu.
func (s *Store) cmdLockConflict(cmd *Command) error {
	if len(s.locks) == 0 {
		return nil
	}
	if len(cmd.Pairs) > 0 {
		for _, p := range cmd.Pairs {
			if err := s.lockConflict(rifl.RPCID{}, p.Key); err != nil {
				return err
			}
		}
		return nil
	}
	if len(cmd.Key) == 0 {
		return nil
	}
	return s.lockConflict(rifl.RPCID{}, cmd.Key)
}

// validateTxn checks a transaction's read versions and write legality
// against current state. It returns false (vote abort) when a read's
// version moved, or when simulating the write-set in order hits an
// increment over a non-counter value — so applyTxnWrites can never fail.
// Must hold s.mu.
func (s *Store) validateTxn(t *TxnCommand) bool {
	for _, r := range t.Reads {
		var cur uint64
		if o := s.objects[string(r.Key)]; o != nil {
			cur = o.version
		}
		if cur != r.Version {
			return false
		}
	}
	// sim[key] is the key's simulated value after the writes so far; a nil
	// entry means deleted (distinct from absent = untouched).
	sim := make(map[string][]byte, len(t.Writes))
	current := func(key []byte) ([]byte, bool) {
		if v, ok := sim[string(key)]; ok {
			return v, v != nil
		}
		if o := s.objects[string(key)]; o != nil && o.value != nil {
			return o.value, true
		}
		return nil, false
	}
	for _, w := range t.Writes {
		switch w.Op {
		case OpDelete:
			sim[string(w.Key)] = nil
		case OpIncrement:
			var cur int64
			if v, ok := current(w.Key); ok {
				if !isCounter(v) {
					return false
				}
				cur = parseCounter(v)
			}
			sim[string(w.Key)] = formatCounter(cur + w.Delta)
		default: // OpPut
			v := w.Value
			if v == nil {
				v = []byte{}
			}
			sim[string(w.Key)] = v
		}
	}
	return true
}

// applyTxnWrites runs the write-set in order, leaving the touched keys in
// s.txnTouched for LSN stamping. Validation already guaranteed every write
// is legal. Must hold s.mu.
func (s *Store) applyTxnWrites(writes []TxnWrite) {
	keys := make([][]byte, 0, len(writes))
	for _, w := range writes {
		switch w.Op {
		case OpDelete:
			o := s.objects[string(w.Key)]
			if o == nil {
				o = &object{}
				s.objects[string(w.Key)] = o
			}
			o.value = nil
			o.version++
		case OpIncrement:
			var cur int64
			if o := s.objects[string(w.Key)]; o != nil && o.value != nil {
				cur = parseCounter(o.value)
			}
			s.put(w.Key, formatCounter(cur+w.Delta))
		default: // OpPut
			s.put(w.Key, w.Value)
		}
		keys = append(keys, w.Key)
	}
	s.txnTouched = keys
}

// isCounter reports whether a stored value parses as an int64 counter.
func isCounter(v []byte) bool {
	_, err := strconv.ParseInt(string(v), 10, 64)
	return err == nil
}

// parseCounter decodes a counter value validateTxn already vetted.
func parseCounter(v []byte) int64 {
	n, _ := strconv.ParseInt(string(v), 10, 64)
	return n
}

// formatCounter encodes a counter value.
func formatCounter(n int64) []byte { return []byte(strconv.FormatInt(n, 10)) }

// execTxnPrepare is the OpTxnPrepare state transition. Must hold s.mu.
func (s *Store) execTxnPrepare(cmd *Command) (*Result, bool, error) {
	t := cmd.Txn
	// A decision that already exists answers the prepare: commit means the
	// transaction already ran here (a late retry after crash recovery
	// replayed both phases), abort means a resolver killed it.
	if d, ok := s.decisions[t.ID]; ok {
		return &Result{Found: d.commit}, false, nil
	}
	// Re-prepare of a transaction already holding its locks (a prepare
	// retried past RIFL, e.g. through a recovered master) is a vote-commit
	// no-op.
	if _, ok := s.prepared[t.ID]; ok {
		return &Result{Found: true}, false, nil
	}
	if err := s.lockConflict(t.ID, t.Keys()...); err != nil {
		return nil, false, err
	}
	if !s.validateTxn(t) {
		// Vote abort: a read moved or a write is illegal. No locks, no log
		// entry — like a failed conditional write.
		return &Result{Found: false}, false, nil
	}
	p := &preparedTxn{id: t.ID, home: t.Home, writes: t.Writes, since: time.Now()}
	seen := make(map[string]bool, len(t.Reads)+len(t.Writes))
	for _, k := range t.Keys() {
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		p.keys = append(p.keys, string(k))
		s.locks[string(k)] = p
	}
	s.prepared[t.ID] = p
	return &Result{Found: true}, true, nil
}

// execTxnDecide is the OpTxnDecide state transition. Must hold s.mu.
func (s *Store) execTxnDecide(cmd *Command) (*Result, bool, error) {
	t := cmd.Txn
	if t.HomeRecord {
		// Record the decision on the home shard. Idempotent: the first
		// recorded outcome wins (RIFL already filters duplicate decide
		// RPCs; this guards replays and migration installs).
		if d, ok := s.decisions[t.ID]; ok {
			if TxnTrace != nil {
				TxnTrace("store %p: home-record %v commit=%v KEPT existing commit=%v", s, t.ID, t.Commit, d.commit)
			}
			return &Result{Found: d.commit}, false, nil
		}
		s.decisions[t.ID] = txnDecision{commit: t.Commit, homeHash: t.Home.KeyHash}
		if TxnTrace != nil {
			TxnTrace("store %p: home-record %v commit=%v RECORDED", s, t.ID, t.Commit)
		}
		return &Result{Found: t.Commit}, true, nil
	}
	p, ok := s.prepared[t.ID]
	if !ok {
		// Already decided here (or never prepared — e.g. the range's
		// migration applied the resolution before exporting). No-op.
		if TxnTrace != nil {
			TxnTrace("store %p: decide %v commit=%v NO-OP (not prepared)", s, t.ID, t.Commit)
		}
		return &Result{Found: t.Commit}, false, nil
	}
	if t.Commit {
		s.applyTxnWrites(p.writes)
	}
	if TxnTrace != nil {
		TxnTrace("store %p: decide %v commit=%v applied writes=%v", s, t.ID, t.Commit, p.writes)
	}
	for _, k := range p.keys {
		if s.locks[k] == p {
			delete(s.locks, k)
		}
	}
	delete(s.prepared, t.ID)
	// Both outcomes are logged: replay must re-release the locks the
	// replayed prepare re-created.
	return &Result{Found: t.Commit}, true, nil
}

// execTxnForget is the OpTxnForget state transition: prune a decision
// record whose transaction is fully settled (every participant applied
// and acknowledged its decide). A missing record mutates nothing — the
// forget was already applied, or the decision was never recorded here
// (vote-abort transactions). Must hold s.mu.
func (s *Store) execTxnForget(cmd *Command) (*Result, bool, error) {
	t := cmd.Txn
	if t == nil {
		return nil, false, fmt.Errorf("kv: txn-forget without txn payload")
	}
	if _, ok := s.decisions[t.ID]; !ok {
		return &Result{Found: false}, false, nil
	}
	delete(s.decisions, t.ID)
	if TxnTrace != nil {
		TxnTrace("store %p: forget decision %v", s, t.ID)
	}
	return &Result{Found: true}, true, nil
}

// DecisionCount returns how many decision records the store holds
// (tests; the decision-record GC keeps it from growing with committed
// transactions).
func (s *Store) DecisionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.decisions)
}

// execTxnApply is the OpTxnApply state transition (single-shard atomic
// transaction). Must hold s.mu.
func (s *Store) execTxnApply(cmd *Command) (*Result, bool, error) {
	t := cmd.Txn
	if err := s.lockConflict(rifl.RPCID{}, t.Keys()...); err != nil {
		return nil, false, err
	}
	if !s.validateTxn(t) {
		return &Result{Found: false}, false, nil
	}
	if len(t.Writes) == 0 {
		// Read-only transaction: validation is the whole commit.
		return &Result{Found: true}, false, nil
	}
	s.applyTxnWrites(t.Writes)
	if TxnTrace != nil {
		TxnTrace("store %p: apply writes=%v", s, t.Writes)
	}
	return &Result{Found: true}, true, nil
}

// TxnDecision looks up a transaction's decision record. known is false when
// no decision has been recorded on this store.
func (s *Store) TxnDecision(id rifl.RPCID) (commit, known bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.decisions[id]
	return d.commit, ok
}

// PreparedKeyHashes returns the key hashes locked by a prepared
// transaction (nil if the transaction is not prepared here). Masters use it
// to register a resolver-applied decide's mutations for commutativity
// tracking.
func (s *Store) PreparedKeyHashes(id rifl.RPCID) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.prepared[id]
	if !ok {
		return nil
	}
	hs := make([]uint64, 0, len(p.keys))
	for _, k := range p.keys {
		hs = append(hs, witness.KeyHash([]byte(k)))
	}
	return hs
}

// LockedTxns returns the prepared transactions holding a lock on any key
// matched by pred (every prepared transaction when pred is nil).
func (s *Store) LockedTxns(pred func(key []byte) bool) []LockedTxn {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []LockedTxn
	for _, p := range s.prepared {
		match := pred == nil
		if !match {
			for _, k := range p.keys {
				if pred([]byte(k)) {
					match = true
					break
				}
			}
		}
		if match {
			out = append(out, LockedTxn{ID: p.id, Home: p.home})
		}
	}
	return out
}

// LockCount returns how many keys are currently locked (tests).
func (s *Store) LockCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locks)
}

// ExportDecisions returns the decision records whose home key hash matches
// pred, for transfer with a migrating range.
func (s *Store) ExportDecisions(pred func(homeHash uint64) bool) []TxnDecisionRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []TxnDecisionRecord
	for id, d := range s.decisions {
		if pred(d.homeHash) {
			out = append(out, TxnDecisionRecord{ID: id, Commit: d.commit, HomeHash: d.homeHash})
		}
	}
	return out
}

// DropDecisions removes decision records whose home key hash matches pred
// (the source side of a committed range handoff) and returns how many were
// dropped.
func (s *Store) DropDecisions(pred func(homeHash uint64) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, d := range s.decisions {
		if pred(d.homeHash) {
			delete(s.decisions, id)
			n++
		}
	}
	return n
}
