package controlplane

import (
	"errors"
	"reflect"
	"testing"

	"curp/internal/witness"
)

// applyAll replays cmds against a fresh state and returns it.
func applyAll(t *testing.T, cmds []Command) *State {
	t.Helper()
	st := NewState()
	for i := range cmds {
		if _, err := st.Apply(&cmds[i]); err != nil {
			t.Fatalf("apply %d (%v): %v", i, cmds[i].Kind, err)
		}
	}
	return st
}

func TestApplyDeterminism(t *testing.T) {
	// Every command kind at least once; replaying the same log twice must
	// yield identical states AND identical per-command results/errors —
	// the property the replicated log depends on.
	cmds := []Command{
		{Kind: CmdNoop},
		{Kind: CmdAddPartition, Partition: 1, Epoch: 1, WLV: 1, Addr: "m1",
			Witnesses: []string{"w1", "w2"}, Backups: []string{"b1"}},
		{Kind: CmdBeginRecovery, Partition: 1, Epoch: 2, Addr: "m1b"},
		{Kind: CmdSetMaster, Partition: 1, Epoch: 2, WLV: 2, Addr: "m1b",
			Witnesses: []string{"w3", "w2"}, Backups: []string{"b1", "b2"}},
		{Kind: CmdSetWitnessList, Partition: 1, WLV: 3, Witnesses: []string{"w3", "w4"}},
		{Kind: CmdSetBackups, Partition: 1, Backups: []string{"b2", "b3"}},
		{Kind: CmdAddMoved, Partition: 1, Addr: "m2",
			Ranges: []witness.HashRange{{Lo: 10, Hi: 20}}},
		{Kind: CmdAddFrozen, Partition: 1, Ranges: []witness.HashRange{{Lo: 30, Hi: 40}}},
		{Kind: CmdDelFrozen, Partition: 1, Ranges: []witness.HashRange{{Lo: 30, Hi: 40}}},
		{Kind: CmdRegisterClient},
		{Kind: CmdRegisterClient},
		{Kind: CmdAddSpare, Role: 2, Addr: "s1"},
		{Kind: CmdAddSpare, Role: 2, Addr: "s2"},
		{Kind: CmdTakeSpare, Role: 2, Addr: "s1"},
		{Kind: CmdDelMoved, Partition: 1, Ranges: []witness.HashRange{{Lo: 10, Hi: 20}}},
	}
	a := applyAll(t, cmds)
	b := applyAll(t, cmds)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replaying the same log produced different states:\n%+v\nvs\n%+v", a, b)
	}
	p := a.Partition(1)
	if p.MasterAddr != "m1b" || p.Epoch != 2 || p.WLV != 3 {
		t.Fatalf("unexpected partition record: %+v", p)
	}
	if got := a.Spares[2]; !reflect.DeepEqual(got, []string{"s2"}) {
		t.Fatalf("spares = %v, want [s2]", got)
	}
	if a.ClientSeq != 2 {
		t.Fatalf("client seq = %d, want 2", a.ClientSeq)
	}
	if len(p.Moved) != 0 || len(p.Forwards) != 0 {
		t.Fatalf("moved/forwards not withdrawn: %+v", p)
	}
}

func TestApplyRecoveryFencing(t *testing.T) {
	st := NewState()
	mustApply := func(c Command) uint64 {
		t.Helper()
		res, err := st.Apply(&c)
		if err != nil {
			t.Fatalf("apply %v: %v", c.Kind, err)
		}
		return res
	}
	mustApply(Command{Kind: CmdAddPartition, Partition: 7, Epoch: 1, WLV: 1, Addr: "m"})

	// First coordinator reserves epoch 2.
	if got := mustApply(Command{Kind: CmdBeginRecovery, Partition: 7, Epoch: 2, Addr: "r1"}); got != 2 {
		t.Fatalf("reservation result = %d, want 2", got)
	}
	// A rival reservation at the SAME epoch loses deterministically.
	if _, err := st.Apply(&Command{Kind: CmdBeginRecovery, Partition: 7, Epoch: 2, Addr: "r2"}); !errors.Is(err, ErrStale) {
		t.Fatalf("duplicate reservation err = %v, want ErrStale", err)
	}
	// A newer leader supersedes with epoch 3...
	mustApply(Command{Kind: CmdBeginRecovery, Partition: 7, Epoch: 3, Addr: "r2"})
	// ...so the epoch-2 recovery can no longer publish.
	if _, err := st.Apply(&Command{Kind: CmdSetMaster, Partition: 7, Epoch: 2, Addr: "r1"}); !errors.Is(err, ErrStale) {
		t.Fatalf("superseded set-master err = %v, want ErrStale", err)
	}
	mustApply(Command{Kind: CmdSetMaster, Partition: 7, Epoch: 3, WLV: 2, Addr: "r2", Witnesses: []string{"w"}})
	// Replayed/duplicate publication is also stale.
	if _, err := st.Apply(&Command{Kind: CmdSetMaster, Partition: 7, Epoch: 3, Addr: "r2"}); !errors.Is(err, ErrStale) {
		t.Fatalf("replayed set-master err = %v, want ErrStale", err)
	}
	if p := st.Partition(7); p.MasterAddr != "r2" || p.Epoch != 3 {
		t.Fatalf("partition = %+v, want r2@3", p)
	}
}

func TestApplyStaleVerdicts(t *testing.T) {
	st := NewState()
	if _, err := st.Apply(&Command{Kind: CmdBeginRecovery, Partition: 9, Epoch: 1}); err == nil {
		t.Fatal("recovery of unknown partition should fail")
	}
	st.Apply(&Command{Kind: CmdAddPartition, Partition: 9, Epoch: 1, WLV: 1, Addr: "m"})
	if _, err := st.Apply(&Command{Kind: CmdSetWitnessList, Partition: 9, WLV: 5}); !errors.Is(err, ErrStale) {
		t.Fatalf("skipped WLV err = %v, want ErrStale", err)
	}
	if _, err := st.Apply(&Command{Kind: CmdTakeSpare, Role: 1, Addr: "nope"}); !errors.Is(err, ErrStale) {
		t.Fatalf("absent spare err = %v, want ErrStale", err)
	}
}

func TestCommandWireRoundTrip(t *testing.T) {
	cmds := []Command{
		{Kind: CmdNoop},
		{Kind: CmdSetMaster, Partition: 3, Epoch: 9, WLV: 4, Addr: "host:1",
			Witnesses: []string{"w1", "w2", "w3"}, Backups: []string{"b1"},
			Ranges: []witness.HashRange{{Lo: 1, Hi: 2}, {Lo: ^uint64(0), Hi: 5}}, Role: 3},
		{Kind: CmdRegisterClient},
	}
	for i := range cmds {
		got, err := DecodeCommand(cmds[i].Encode())
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(*got, cmds[i]) {
			t.Fatalf("round trip %d: got %+v want %+v", i, *got, cmds[i])
		}
	}
}

func TestPartitionCloneIsolation(t *testing.T) {
	st := NewState()
	st.Apply(&Command{Kind: CmdAddPartition, Partition: 1, Epoch: 1, WLV: 1, Addr: "m",
		Witnesses: []string{"w"}, Backups: []string{"b"}})
	cp := st.Partition(1)
	cp.Witnesses[0] = "tampered"
	cp.MasterAddr = "tampered"
	if p := st.Partition(1); p.Witnesses[0] != "w" || p.MasterAddr != "m" {
		t.Fatalf("clone leaked mutations back into the state: %+v", p)
	}
}
