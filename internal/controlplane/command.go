// Package controlplane replicates the cluster coordinator's authoritative
// state — partition membership, recovery epochs, witness lists, migration
// arcs, spare-node inventory, client-ID issuance — across a 2f+1 quorum of
// coordinator replicas.
//
// The paper (Park & Ousterhout, NSDI '19) assumes a consensus-backed
// configuration manager in §2; internal/consensus supplies the §A.2
// substrate for the DATA plane (CURP over a replicated log). This package
// applies the same machinery to the CONTROL plane: every configuration
// mutation is a Command proposed to the quorum leader, committed by
// majority replication, and applied deterministically to every replica's
// State. A restarted or follower-promoted coordinator therefore rebuilds
// the full configuration from the committed log with zero operator input,
// and a leader lease (plus the epoch-reservation command, CmdBeginRecovery)
// guarantees two coordinators can never both depose a master.
//
// The package is transport-agnostic: Node speaks to its peers through the
// Sender interface, which internal/cluster backs with the repo's RPC layer
// and tests back with direct in-process calls (the idiom of
// internal/consensus).
package controlplane

import (
	"fmt"

	"curp/internal/rpc"
	"curp/internal/witness"
)

// Kind discriminates control-plane commands.
type Kind uint8

const (
	// CmdNoop is the barrier entry a fresh leader appends to commit its
	// term (Raft's current-term commit rule needs an entry OF the new term
	// before earlier entries may commit).
	CmdNoop Kind = iota + 1
	// CmdAddPartition registers a data partition: master address, epoch,
	// witness list (+version), backups.
	CmdAddPartition
	// CmdBeginRecovery reserves recovery epoch Epoch (= current reserved
	// epoch + 1) for a partition before any backup is fenced. Committing
	// the reservation through the log serializes recoveries globally: a
	// deposed coordinator leader still fencing at epoch E loses to the new
	// leader's committed reservation of E+1, so dual-depose is impossible
	// even across control-plane failovers.
	CmdBeginRecovery
	// CmdSetMaster publishes a completed recovery/migration: the partition
	// is now served by Addr at Epoch (which must equal the committed
	// reservation) with the given witness list and backups.
	CmdSetMaster
	// CmdSetWitnessList replaces a partition's witness list under an
	// incremented WitnessListVersion.
	CmdSetWitnessList
	// CmdSetBackups replaces a partition's backup list (automatic backup
	// replacement swaps a re-seeded spare into the sync set).
	CmdSetBackups
	// CmdAddMoved records ring arcs that migrated away (plus an optional
	// decision-forward address), the durability point of a handoff.
	CmdAddMoved
	// CmdDelMoved withdraws exactly-matching moved arcs (abort undo).
	CmdDelMoved
	// CmdAddFrozen records arcs a migration step is transferring out.
	CmdAddFrozen
	// CmdDelFrozen withdraws freeze records after abort or commit.
	CmdDelFrozen
	// CmdRegisterClient allocates the next client sequence number; the
	// replica adds its configured RIFL namespace to form the client ID, so
	// IDs stay unique across coordinator failovers.
	CmdRegisterClient
	// CmdAddSpare records a pre-provisioned spare node (Role, Addr) in the
	// shared inventory.
	CmdAddSpare
	// CmdTakeSpare claims a spare exclusively: the command fails if the
	// address is no longer in the inventory, so two heal actions (or two
	// momentarily-overlapping leaders) cannot hand out one spare twice.
	CmdTakeSpare
)

// String names the command kind.
func (k Kind) String() string {
	switch k {
	case CmdNoop:
		return "noop"
	case CmdAddPartition:
		return "add-partition"
	case CmdBeginRecovery:
		return "begin-recovery"
	case CmdSetMaster:
		return "set-master"
	case CmdSetWitnessList:
		return "set-witness-list"
	case CmdSetBackups:
		return "set-backups"
	case CmdAddMoved:
		return "add-moved"
	case CmdDelMoved:
		return "del-moved"
	case CmdAddFrozen:
		return "add-frozen"
	case CmdDelFrozen:
		return "del-frozen"
	case CmdRegisterClient:
		return "register-client"
	case CmdAddSpare:
		return "add-spare"
	case CmdTakeSpare:
		return "take-spare"
	}
	return "unknown"
}

// Command is one replicated control-plane mutation. Fields are
// kind-dependent; unused fields are zero.
type Command struct {
	Kind      Kind
	Partition uint64
	// Epoch: AddPartition (initial), BeginRecovery (reservation),
	// SetMaster (the committed reservation being published).
	Epoch uint64
	// WLV: AddPartition / SetMaster / SetWitnessList witness-list version.
	WLV uint64
	// Addr: master address (AddPartition/BeginRecovery/SetMaster), forward
	// destination (AddMoved), or spare address (AddSpare/TakeSpare).
	Addr      string
	Witnesses []string
	Backups   []string
	Ranges    []witness.HashRange
	// Role tags spare inventory entries (health.Role values).
	Role uint8
}

// Encode serializes the command for the replicated log's wire format.
func (c *Command) Encode() []byte {
	e := rpc.NewEncoder(64)
	e.U8(uint8(c.Kind))
	e.U64(c.Partition)
	e.U64(c.Epoch)
	e.U64(c.WLV)
	e.String(c.Addr)
	encodeStrings(e, c.Witnesses)
	encodeStrings(e, c.Backups)
	encodeRanges(e, c.Ranges)
	e.U8(c.Role)
	return e.Bytes()
}

// DecodeCommand parses an encoded command.
func DecodeCommand(b []byte) (*Command, error) {
	d := rpc.NewDecoder(b)
	c := decodeCommand(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: bad command: %w", err)
	}
	return c, nil
}

func decodeCommand(d *rpc.Decoder) *Command {
	c := &Command{}
	c.Kind = Kind(d.U8())
	c.Partition = d.U64()
	c.Epoch = d.U64()
	c.WLV = d.U64()
	c.Addr = d.String()
	c.Witnesses = decodeStrings(d)
	c.Backups = decodeStrings(d)
	c.Ranges = decodeRanges(d)
	c.Role = d.U8()
	return c
}

func encodeStrings(e *rpc.Encoder, ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

func decodeStrings(d *rpc.Decoder) []string {
	n := d.U32()
	if n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		ss = append(ss, d.String())
	}
	return ss
}

func encodeRanges(e *rpc.Encoder, rs []witness.HashRange) {
	e.U32(uint32(len(rs)))
	for _, r := range rs {
		e.U64(r.Lo)
		e.U64(r.Hi)
	}
}

func decodeRanges(d *rpc.Decoder) []witness.HashRange {
	n := d.U32()
	if n == 0 {
		return nil
	}
	rs := make([]witness.HashRange, 0, n)
	for i := uint32(0); i < n; i++ {
		rs = append(rs, witness.HashRange{Lo: d.U64(), Hi: d.U64()})
	}
	return rs
}
