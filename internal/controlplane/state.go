package controlplane

import (
	"errors"
	"fmt"

	"curp/internal/witness"
)

// ErrStale reports a command that lost a reconfiguration race: the state it
// was proposed against changed before it committed (e.g. two coordinators
// both reserving recovery epoch E+1 — the second committed reservation
// fails here, which is exactly the dual-depose fence). Apply errors are a
// deterministic function of (state, command), so every replica reaches the
// same verdict.
var ErrStale = errors.New("controlplane: command lost a reconfiguration race")

// Forward pairs handed-off arcs with the destination master that received
// them (transaction decision lookups follow it after the source dies).
type Forward struct {
	Ranges []witness.HashRange
	Addr   string
}

// Partition is the replicated record of one data partition.
type Partition struct {
	ID         uint64
	MasterAddr string
	// Epoch is the recovery epoch of the SERVING master. ReservedEpoch is
	// the highest epoch a recovery has committed a reservation for; it
	// runs ahead of Epoch while a recovery is in flight and equals it
	// otherwise.
	Epoch         uint64
	ReservedEpoch uint64
	// ReservedAddr is the replacement address of the in-flight recovery
	// (informational; SetMaster publishes the authoritative one).
	ReservedAddr string
	WLV          uint64
	Witnesses    []string
	Backups      []string
	Moved        []witness.HashRange
	Frozen       []witness.HashRange
	Forwards     []Forward
}

// clone deep-copies the partition record.
func (p *Partition) clone() *Partition {
	cp := *p
	cp.Witnesses = append([]string(nil), p.Witnesses...)
	cp.Backups = append([]string(nil), p.Backups...)
	cp.Moved = append([]witness.HashRange(nil), p.Moved...)
	cp.Frozen = append([]witness.HashRange(nil), p.Frozen...)
	cp.Forwards = make([]Forward, 0, len(p.Forwards))
	for _, f := range p.Forwards {
		cp.Forwards = append(cp.Forwards, Forward{
			Ranges: append([]witness.HashRange(nil), f.Ranges...),
			Addr:   f.Addr,
		})
	}
	return &cp
}

// State is the deterministic control-plane state machine. It is mutated
// ONLY by Apply, in log order, so every replica that applied the same
// committed prefix holds an identical State.
type State struct {
	Partitions map[uint64]*Partition
	// Spares is the pre-provisioned spare-node inventory, keyed by role.
	Spares map[uint8][]string
	// ClientSeq is the replicated client-ID allocator: CmdRegisterClient
	// increments it, and each replica forms the RIFL ID as its configured
	// namespace base + sequence.
	ClientSeq uint64
}

// NewState returns an empty control-plane state.
func NewState() *State {
	return &State{
		Partitions: make(map[uint64]*Partition),
		Spares:     make(map[uint8][]string),
	}
}

// Partition returns a deep copy of one partition's record (nil if absent).
func (s *State) Partition(id uint64) *Partition {
	if p := s.Partitions[id]; p != nil {
		return p.clone()
	}
	return nil
}

// Apply executes one committed command. The uint64 result is
// kind-dependent: the reserved epoch for CmdBeginRecovery, the allocated
// sequence for CmdRegisterClient, zero otherwise. Both result and error
// are deterministic in (state, command).
func (s *State) Apply(c *Command) (uint64, error) {
	switch c.Kind {
	case CmdNoop:
		return 0, nil

	case CmdAddPartition:
		s.Partitions[c.Partition] = &Partition{
			ID:            c.Partition,
			MasterAddr:    c.Addr,
			Epoch:         c.Epoch,
			ReservedEpoch: c.Epoch,
			WLV:           c.WLV,
			Witnesses:     append([]string(nil), c.Witnesses...),
			Backups:       append([]string(nil), c.Backups...),
		}
		return 0, nil

	case CmdBeginRecovery:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		if c.Epoch != p.ReservedEpoch+1 {
			return 0, fmt.Errorf("%w: recovery epoch %d proposed, %d already reserved", ErrStale, c.Epoch, p.ReservedEpoch)
		}
		p.ReservedEpoch = c.Epoch
		p.ReservedAddr = c.Addr
		return c.Epoch, nil

	case CmdSetMaster:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		// Only the holder of the CURRENT reservation may publish: a slower
		// recovery whose reservation was superseded must not clobber the
		// newer master.
		if c.Epoch != p.ReservedEpoch || c.Epoch <= p.Epoch {
			return 0, fmt.Errorf("%w: set-master at epoch %d, reserved %d serving %d", ErrStale, c.Epoch, p.ReservedEpoch, p.Epoch)
		}
		p.MasterAddr = c.Addr
		p.Epoch = c.Epoch
		p.ReservedAddr = ""
		p.WLV = c.WLV
		p.Witnesses = append([]string(nil), c.Witnesses...)
		if c.Backups != nil {
			p.Backups = append([]string(nil), c.Backups...)
		}
		return c.Epoch, nil

	case CmdSetWitnessList:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		if c.WLV != p.WLV+1 {
			return 0, fmt.Errorf("%w: witness list version %d proposed, current %d", ErrStale, c.WLV, p.WLV)
		}
		p.WLV = c.WLV
		p.Witnesses = append([]string(nil), c.Witnesses...)
		return c.WLV, nil

	case CmdSetBackups:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		p.Backups = append([]string(nil), c.Backups...)
		return 0, nil

	case CmdAddMoved:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		p.Moved = witness.MergeRanges(p.Moved, c.Ranges)
		if c.Addr != "" {
			p.Forwards = append(p.Forwards, Forward{
				Ranges: append([]witness.HashRange(nil), c.Ranges...),
				Addr:   c.Addr,
			})
		}
		return 0, nil

	case CmdDelMoved:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		p.Moved = witness.RemoveRanges(p.Moved, c.Ranges)
		kept := p.Forwards[:0]
		for _, f := range p.Forwards {
			if rem := witness.RemoveRanges(f.Ranges, c.Ranges); len(rem) != 0 {
				f.Ranges = rem
				kept = append(kept, f)
			}
		}
		p.Forwards = kept
		return 0, nil

	case CmdAddFrozen:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		p.Frozen = witness.MergeRanges(p.Frozen, c.Ranges)
		return 0, nil

	case CmdDelFrozen:
		p, err := s.part(c.Partition)
		if err != nil {
			return 0, err
		}
		p.Frozen = witness.RemoveRanges(p.Frozen, c.Ranges)
		return 0, nil

	case CmdRegisterClient:
		s.ClientSeq++
		return s.ClientSeq, nil

	case CmdAddSpare:
		for _, a := range s.Spares[c.Role] {
			if a == c.Addr {
				return 0, nil // idempotent re-registration
			}
		}
		s.Spares[c.Role] = append(s.Spares[c.Role], c.Addr)
		return 0, nil

	case CmdTakeSpare:
		pool := s.Spares[c.Role]
		for i, a := range pool {
			if a == c.Addr {
				s.Spares[c.Role] = append(pool[:i:i], pool[i+1:]...)
				return 0, nil
			}
		}
		return 0, fmt.Errorf("%w: spare %s already claimed", ErrStale, c.Addr)
	}
	return 0, fmt.Errorf("controlplane: unknown command kind %d", c.Kind)
}

func (s *State) part(id uint64) (*Partition, error) {
	p := s.Partitions[id]
	if p == nil {
		return nil, fmt.Errorf("controlplane: unknown partition %d", id)
	}
	return p, nil
}
