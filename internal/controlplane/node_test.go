package controlplane

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memNet is an in-process Sender: it routes consensus RPCs straight to the
// target node's handlers, with a per-address partition switch.
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
}

func newMemNet() *memNet {
	return &memNet{nodes: make(map[string]*Node), down: make(map[string]bool)}
}

func (m *memNet) lookup(addr string) *Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[addr] {
		return nil
	}
	return m.nodes[addr]
}

func (m *memNet) setDown(addr string, down bool) {
	m.mu.Lock()
	m.down[addr] = down
	m.mu.Unlock()
}

// memSender is one node's view of the net: a partitioned node can neither
// receive nor send.
type memSender struct {
	net  *memNet
	self string
}

func (s *memSender) AppendEntries(_ context.Context, addr string, req *AppendRequest) (*AppendReply, error) {
	n := s.net.lookup(addr)
	if n == nil || s.net.lookup(s.self) == nil {
		return nil, errors.New("memnet: unreachable")
	}
	// Round-trip through the wire codecs so they stay honest.
	wire, err := DecodeAppendRequest(req.Encode())
	if err != nil {
		return nil, err
	}
	reply := n.HandleAppend(wire)
	return DecodeAppendReply(reply.Encode())
}

func (s *memSender) RequestVote(_ context.Context, addr string, req *VoteRequest) (*VoteReply, error) {
	n := s.net.lookup(addr)
	if n == nil || s.net.lookup(s.self) == nil {
		return nil, errors.New("memnet: unreachable")
	}
	wire, err := DecodeVoteRequest(req.Encode())
	if err != nil {
		return nil, err
	}
	reply := n.HandleVote(wire)
	return DecodeVoteReply(reply.Encode())
}

func startQuorum(t *testing.T, replicas int) (*memNet, []*Node) {
	t.Helper()
	net := newMemNet()
	peers := make([]string, replicas)
	for i := range peers {
		peers[i] = string(rune('a' + i))
	}
	nodes := make([]*Node, replicas)
	for i := range nodes {
		n, err := NewNode(Config{
			Rank:            i,
			Peers:           peers,
			Send:            &memSender{net: net, self: peers[i]},
			ElectionTimeout: 60 * time.Millisecond,
			Seeded:          true,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		net.mu.Lock()
		net.nodes[peers[i]] = n
		net.mu.Unlock()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return net, nodes
}

func waitLeader(t *testing.T, nodes []*Node, exclude int) *Node {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i, n := range nodes {
			if i == exclude {
				continue
			}
			if n.HoldingLease() {
				return n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader emerged")
	return nil
}

func TestSingleReplicaCommitsInline(t *testing.T) {
	_, nodes := startQuorum(t, 1)
	n := nodes[0]
	if !n.HoldingLease() {
		t.Fatal("single replica should hold the lease unconditionally")
	}
	res, err := n.Propose(context.Background(), &Command{Kind: CmdRegisterClient})
	if err != nil || res != 1 {
		t.Fatalf("propose = (%d, %v), want (1, nil)", res, err)
	}
}

func TestQuorumCommitAndMirror(t *testing.T) {
	_, nodes := startQuorum(t, 3)
	leader := waitLeader(t, nodes, -1)
	if _, err := leader.Propose(context.Background(), &Command{
		Kind: CmdAddPartition, Partition: 1, Epoch: 1, WLV: 1, Addr: "m1",
		Witnesses: []string{"w1"}, Backups: []string{"b1"},
	}); err != nil {
		t.Fatalf("propose: %v", err)
	}
	// Followers converge to the same applied state.
	deadline := time.Now().Add(3 * time.Second)
	for _, n := range nodes {
		for {
			var ok bool
			n.View(func(st *State) {
				p := st.Partitions[1]
				ok = p != nil && p.MasterAddr == "m1" && p.WLV == 1
			})
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never applied the partition", n.cfg.Rank)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Deterministic apply error propagates back through Propose.
	if _, err := leader.Propose(context.Background(), &Command{
		Kind: CmdSetWitnessList, Partition: 1, WLV: 9,
	}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale proposal err = %v, want ErrStale", err)
	}
}

func TestFollowerRejectsProposals(t *testing.T) {
	_, nodes := startQuorum(t, 3)
	leader := waitLeader(t, nodes, -1)
	for _, n := range nodes {
		if n == leader {
			continue
		}
		_, err := n.Propose(context.Background(), &Command{Kind: CmdNoop})
		var nle *NotLeaderError
		if !errors.As(err, &nle) {
			t.Fatalf("follower propose err = %v, want NotLeaderError", err)
		}
		if nle.LeaderAddr != leader.Addr() {
			t.Fatalf("redirect hint = %q, want %q", nle.LeaderAddr, leader.Addr())
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	net, nodes := startQuorum(t, 3)
	old := waitLeader(t, nodes, -1)
	if _, err := old.Propose(context.Background(), &Command{Kind: CmdRegisterClient}); err != nil {
		t.Fatalf("propose before failover: %v", err)
	}
	net.setDown(old.Addr(), true)
	// Lease exclusivity: until the old lease can have expired AND a new
	// election concluded, at most one node claims the lease at any instant.
	succ := waitLeader(t, nodes, old.cfg.Rank)
	if succ == old {
		t.Fatal("partitioned leader should not be the successor")
	}
	// The successor's log retained the committed entry.
	res, err := succ.Propose(context.Background(), &Command{Kind: CmdRegisterClient})
	if err != nil {
		t.Fatalf("propose after failover: %v", err)
	}
	if res != 2 {
		t.Fatalf("client seq after failover = %d, want 2 (committed entry lost?)", res)
	}
	// The deposed leader rejoins as a follower and catches up.
	net.setDown(old.Addr(), false)
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := old.Status()
		if !st.IsLeader && st.Commit >= succ.Status().Commit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old leader never rejoined: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaseExclusive(t *testing.T) {
	net, nodes := startQuorum(t, 3)
	old := waitLeader(t, nodes, -1)
	net.setDown(old.Addr(), true)
	waitLeader(t, nodes, old.cfg.Rank)
	// The cut-off leader's lease must have lapsed by the time a successor
	// could win an election — this is the no-dual-depose invariant.
	if old.HoldingLease() {
		t.Fatal("deposed leader still claims the lease while a successor leads")
	}
}

func TestRestartRebuildsFromLog(t *testing.T) {
	net, nodes := startQuorum(t, 3)
	leader := waitLeader(t, nodes, -1)
	for i := 0; i < 5; i++ {
		if _, err := leader.Propose(context.Background(), &Command{Kind: CmdRegisterClient}); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	if _, err := leader.Propose(context.Background(), &Command{
		Kind: CmdAddPartition, Partition: 4, Epoch: 2, WLV: 1, Addr: "m4",
	}); err != nil {
		t.Fatalf("propose partition: %v", err)
	}

	// "Restart" a follower: replace it with a blank replica that has NO
	// state — it must rebuild purely from the leader's replicated log.
	victim := (leader.cfg.Rank + 1) % 3
	nodes[victim].Close()
	var applied atomic.Int64
	fresh, err := NewNode(Config{
		Rank:            victim,
		Peers:           leader.cfg.Peers,
		Send:            &memSender{net: net, self: leader.cfg.Peers[victim]},
		ElectionTimeout: 60 * time.Millisecond,
		Apply:           func(c *Command, _ *State, _ uint64, _ error) { applied.Add(1) },
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer fresh.Close()
	net.mu.Lock()
	net.nodes[leader.cfg.Peers[victim]] = fresh
	net.mu.Unlock()

	deadline := time.Now().Add(3 * time.Second)
	for {
		var ok bool
		fresh.View(func(st *State) {
			ok = st.ClientSeq == 5 && st.Partitions[4] != nil && st.Partitions[4].MasterAddr == "m4"
		})
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never rebuilt state; status %+v", fresh.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if applied.Load() == 0 {
		t.Fatal("apply callback never observed the rebuilt log")
	}
}

func TestProposeContextCancel(t *testing.T) {
	net, nodes := startQuorum(t, 3)
	leader := waitLeader(t, nodes, -1)
	// Cut the leader off so nothing can commit, then propose with a short
	// deadline: Propose must return the context error, not hang.
	for _, p := range leader.cfg.Peers {
		if p != leader.Addr() {
			net.setDown(p, true)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := leader.Propose(ctx, &Command{Kind: CmdNoop})
	if err == nil {
		t.Fatal("propose with no quorum should fail")
	}
}
