package controlplane

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"curp/internal/consensus"
	"curp/internal/rpc"
)

// Entry is one slot of the replicated control log.
type Entry struct {
	Term uint64
	Cmd  Command
}

// AppendRequest is the leader→follower replication call. Control logs are
// small (one entry per reconfiguration event), so the leader ships its
// FULL log each round — the idiom internal/consensus established for the
// data plane — which doubles as state transfer: a restarted replica joins
// empty and rebuilds everything from the first append it accepts.
type AppendRequest struct {
	Term       uint64
	LeaderRank int
	LeaderAddr string
	Entries    []Entry
	Commit     uint64
}

// AppendReply acknowledges a replication round.
type AppendReply struct {
	Term uint64
	OK   bool
}

// VoteRequest solicits one vote for CandidateRank at Term.
type VoteRequest struct {
	Term          uint64
	CandidateRank int
	LastLogTerm   uint64
	LogLen        uint64
}

// VoteReply carries the voter's verdict.
type VoteReply struct {
	Term    uint64
	Granted bool
}

// Sender delivers consensus RPCs to a peer replica. internal/cluster backs
// it with the RPC layer; tests may back it with direct method calls.
type Sender interface {
	AppendEntries(ctx context.Context, addr string, req *AppendRequest) (*AppendReply, error)
	RequestVote(ctx context.Context, addr string, req *VoteRequest) (*VoteReply, error)
}

// NotLeaderError rejects a proposal at a non-leader replica; LeaderAddr
// (possibly empty during elections) is the redirect hint.
type NotLeaderError struct {
	LeaderAddr string
}

func (e *NotLeaderError) Error() string {
	if e.LeaderAddr == "" {
		return "controlplane: not the leader (no leader known)"
	}
	return "controlplane: not the leader (leader at " + e.LeaderAddr + ")"
}

// ErrLostLeadership reports a proposal whose entry was displaced by a new
// leader before committing; the caller must retry against the new leader.
var ErrLostLeadership = errors.New("controlplane: lost leadership before commit")

// ErrClosed reports use of a closed node.
var ErrClosed = errors.New("controlplane: node closed")

// Config configures one control-plane replica.
type Config struct {
	// Rank is this replica's index into Peers.
	Rank int
	// Peers lists every replica address, self included.
	Peers []string
	// Send delivers consensus RPCs.
	Send Sender
	// Apply observes every committed command in log order, AFTER the
	// node's State applied it, with the deterministic result and the
	// post-apply state. The cluster coordinator mirrors the committed
	// state into its serving tables here. Called with the node lock held;
	// it must not call back into the node or retain st.
	Apply func(cmd *Command, st *State, result uint64, err error)
	// ElectionTimeout is how long a follower waits without leader contact
	// before standing for election (staggered by rank, jittered). Default
	// 150ms.
	ElectionTimeout time.Duration
	// HeartbeatEvery is the leader's idle replication cadence. Default
	// ElectionTimeout/5.
	HeartbeatEvery time.Duration
	// LeaseDuration is the leader lease: after a majority of replicas
	// acknowledged an append round started at T, the leader may act alone
	// until T+LeaseDuration, because followers suppress votes for
	// ElectionTimeout after leader contact. Must be below ElectionTimeout;
	// default 60% of it.
	LeaseDuration time.Duration
	// Seeded boots rank 0 as leader of term 1 (and everyone else as its
	// follower), skipping the boot-time election — the cluster runtime
	// starts all replicas together and rank 0 registers the partitions.
	Seeded bool
	// OnElection observes this replica winning an election (metrics).
	OnElection func(term uint64)
	// OnStepDown observes this replica losing leadership (a leader or
	// candidate reverting to follower). Called with the node's lock held;
	// it must not block or call back into the node.
	OnStepDown func(term uint64)
	// Logf, when set, receives protocol transition logs.
	Logf func(format string, args ...any)
}

type role uint8

const (
	follower role = iota
	candidate
	leader
)

// Node is one control-plane replica: a raft-style strong leader over the
// full-log replication scheme, applying committed commands to a State.
type Node struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	role        role
	term        uint64
	votedFor    int // rank voted for in term; -1 none
	leaderRank  int // -1 unknown
	lastContact time.Time

	log     []Entry
	commit  uint64
	applied uint64
	results []applyOutcome
	st      *State

	// Leader-only volatile state, rebuilt on election win.
	matchLen []uint64
	ackedAt  []time.Time // start time of the last acked append round, per peer

	dirty []chan struct{} // per-peer replication nudges

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	elections atomic.Uint64
	committed atomic.Uint64
}

type applyOutcome struct {
	res uint64
	err error
}

// NewNode creates and starts a replica.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Peers) {
		return nil, fmt.Errorf("controlplane: rank %d outside peer list of %d", cfg.Rank, len(cfg.Peers))
	}
	if cfg.Send == nil && len(cfg.Peers) > 1 {
		return nil, fmt.Errorf("controlplane: multi-replica node needs a Sender")
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.ElectionTimeout / 5
	}
	if cfg.LeaseDuration <= 0 || cfg.LeaseDuration >= cfg.ElectionTimeout {
		cfg.LeaseDuration = cfg.ElectionTimeout * 3 / 5
	}
	n := &Node{
		cfg:        cfg,
		votedFor:   -1,
		leaderRank: -1,
		st:         NewState(),
		matchLen:   make([]uint64, len(cfg.Peers)),
		ackedAt:    make([]time.Time, len(cfg.Peers)),
		dirty:      make([]chan struct{}, len(cfg.Peers)),
		closed:     make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	for i := range n.dirty {
		n.dirty[i] = make(chan struct{}, 1)
	}
	if cfg.Seeded {
		n.term = 1
		n.leaderRank = 0
		n.lastContact = time.Now()
		if cfg.Rank == 0 {
			n.role = leader
			n.appendLocked(Command{Kind: CmdNoop})
		}
	}
	for i := range cfg.Peers {
		if i == cfg.Rank {
			continue
		}
		n.wg.Add(1)
		go n.replicate(i)
	}
	n.wg.Add(1)
	go n.electionLoop()
	return n, nil
}

// Close stops the replica's goroutines.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.closed) })
	n.cond.Broadcast()
	n.wg.Wait()
}

// Addr returns this replica's own address.
func (n *Node) Addr() string { return n.cfg.Peers[n.cfg.Rank] }

// Status is a point-in-time snapshot of the replica's protocol state.
type Status struct {
	Rank       int
	Term       uint64
	LeaderRank int
	LeaderAddr string
	IsLeader   bool
	Leased     bool
	Commit     uint64
	LogLen     uint64
	Replicas   int
	Elections  uint64
	Committed  uint64
}

// Status reports the replica's view of the quorum.
func (n *Node) Status() Status {
	n.mu.Lock()
	s := Status{
		Rank:       n.cfg.Rank,
		Term:       n.term,
		LeaderRank: n.leaderRank,
		IsLeader:   n.role == leader,
		Commit:     n.commit,
		LogLen:     uint64(len(n.log)),
		Replicas:   len(n.cfg.Peers),
		Elections:  n.elections.Load(),
		Committed:  n.committed.Load(),
	}
	if n.leaderRank >= 0 && n.leaderRank < len(n.cfg.Peers) {
		s.LeaderAddr = n.cfg.Peers[n.leaderRank]
	}
	leased := n.role == leader && n.leaseDeadlineLocked().After(time.Now())
	n.mu.Unlock()
	s.Leased = leased
	return s
}

// HoldingLease reports whether this replica is the leader AND holds the
// majority-acknowledged lease — the gate heal actions require, so two
// coordinators can never both depose a master.
func (n *Node) HoldingLease() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader && n.leaseDeadlineLocked().After(time.Now())
}

// leaseDeadlineLocked computes the lease expiry: the majority-th most
// recent append-round start time (self counts as "now") plus
// LeaseDuration. A follower that acknowledged a round started at T will
// not grant a vote before T+ElectionTimeout, and any new leader needs a
// majority of votes that must intersect our acknowledged majority — so no
// rival can be elected before the deadline (LeaseDuration <
// ElectionTimeout keeps a margin for clock arithmetic drift).
func (n *Node) leaseDeadlineLocked() time.Time {
	if len(n.cfg.Peers) == 1 {
		return time.Now().Add(n.cfg.LeaseDuration)
	}
	times := make([]time.Time, 0, len(n.cfg.Peers))
	for i := range n.cfg.Peers {
		if i == n.cfg.Rank {
			times = append(times, time.Now())
		} else {
			times = append(times, n.ackedAt[i])
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].After(times[j]) })
	return times[consensus.QuorumSize(len(n.cfg.Peers))-1].Add(n.cfg.LeaseDuration)
}

// View runs f with the node's applied State under the lock. f must not
// retain references into the state.
func (n *Node) View(f func(*State)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(n.st)
}

// Propose appends cmd at the leader, waits for majority commit, and
// returns the deterministic apply outcome. At a follower it fails with
// *NotLeaderError carrying the redirect hint.
func (n *Node) Propose(ctx context.Context, cmd *Command) (uint64, error) {
	n.mu.Lock()
	if n.role != leader {
		var hint string
		if n.leaderRank >= 0 && n.leaderRank != n.cfg.Rank {
			hint = n.cfg.Peers[n.leaderRank]
		}
		n.mu.Unlock()
		return 0, &NotLeaderError{LeaderAddr: hint}
	}
	term := n.term
	index := n.appendLocked(*cmd)
	n.mu.Unlock()
	n.nudgeAll()

	// Wake the wait loop when the caller gives up.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			n.cond.Broadcast()
		case <-watchDone:
		case <-n.closed:
		}
	}()

	n.mu.Lock()
	defer n.mu.Unlock()
	for n.commit < index {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		select {
		case <-n.closed:
			return 0, ErrClosed
		default:
		}
		if n.term != term || n.role != leader {
			// A new leader may have displaced (or may yet displace) our
			// uncommitted entry; the caller must re-propose.
			if uint64(len(n.log)) < index || n.log[index-1].Term != term {
				return 0, ErrLostLeadership
			}
			if n.commit >= index {
				break
			}
			return 0, ErrLostLeadership
		}
		n.cond.Wait()
	}
	if n.log[index-1].Term != term {
		return 0, ErrLostLeadership
	}
	out := n.results[index-1]
	return out.res, out.err
}

// appendLocked appends a leader entry and self-matches it.
func (n *Node) appendLocked(cmd Command) uint64 {
	n.log = append(n.log, Entry{Term: n.term, Cmd: cmd})
	n.results = append(n.results, applyOutcome{})
	index := uint64(len(n.log))
	n.matchLen[n.cfg.Rank] = index
	if len(n.cfg.Peers) == 1 {
		n.advanceCommitLocked()
	}
	return index
}

func (n *Node) nudgeAll() {
	for i := range n.dirty {
		if i == n.cfg.Rank {
			continue
		}
		select {
		case n.dirty[i] <- struct{}{}:
		default:
		}
	}
}

// advanceCommitLocked applies Raft's commit rule: the largest index
// matched on a majority whose entry is of the CURRENT term.
func (n *Node) advanceCommitLocked() {
	if n.role != leader {
		return
	}
	lens := append([]uint64(nil), n.matchLen...)
	sort.Slice(lens, func(i, j int) bool { return lens[i] > lens[j] })
	cand := lens[consensus.QuorumSize(len(n.cfg.Peers))-1]
	if cand > n.commit && n.log[cand-1].Term == n.term {
		n.commit = cand
		n.applyLocked()
		n.cond.Broadcast()
	}
}

// applyLocked applies committed entries to the State, records per-index
// outcomes, and notifies the mirror callback.
func (n *Node) applyLocked() {
	for n.applied < n.commit {
		en := &n.log[n.applied]
		res, err := n.st.Apply(&en.Cmd)
		n.results[n.applied] = applyOutcome{res: res, err: err}
		n.applied++
		n.committed.Add(1)
		if n.cfg.Apply != nil {
			n.cfg.Apply(&en.Cmd, n.st, res, err)
		}
	}
}

// replicate is the resident per-peer replication loop: it pushes the full
// log on every nudge and at the heartbeat cadence while this replica
// leads.
func (n *Node) replicate(peer int) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-n.dirty[peer]:
		case <-ticker.C:
		}
		n.mu.Lock()
		if n.role != leader {
			n.mu.Unlock()
			continue
		}
		req := &AppendRequest{
			Term:       n.term,
			LeaderRank: n.cfg.Rank,
			LeaderAddr: n.cfg.Peers[n.cfg.Rank],
			Entries:    append([]Entry(nil), n.log...),
			Commit:     n.commit,
		}
		n.mu.Unlock()

		roundStart := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeout/2)
		reply, err := n.cfg.Send.AppendEntries(ctx, n.cfg.Peers[peer], req)
		cancel()
		if err != nil || reply == nil {
			continue
		}

		n.mu.Lock()
		switch {
		case reply.Term > n.term:
			n.stepDownLocked(reply.Term)
		case reply.OK && n.role == leader && n.term == req.Term:
			if l := uint64(len(req.Entries)); l > n.matchLen[peer] {
				n.matchLen[peer] = l
			}
			n.ackedAt[peer] = roundStart
			n.advanceCommitLocked()
		}
		n.mu.Unlock()
	}
}

func (n *Node) stepDownLocked(term uint64) {
	if term > n.term {
		n.term = term
		n.votedFor = -1
	}
	if n.role == leader || n.role == candidate {
		n.logf("rank %d stepping down at term %d", n.cfg.Rank, n.term)
		if n.role == leader && n.cfg.OnStepDown != nil {
			n.cfg.OnStepDown(n.term)
		}
	}
	n.role = follower
	n.leaderRank = -1
	n.cond.Broadcast()
}

// HandleAppend is the follower half of replication, invoked by the RPC
// layer (or directly, in tests).
func (n *Node) HandleAppend(req *AppendRequest) *AppendReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term < n.term {
		return &AppendReply{Term: n.term}
	}
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = -1
	}
	n.role = follower
	n.leaderRank = req.LeaderRank
	n.lastContact = time.Now()

	// Adopt the leader's log unless ours is more up-to-date (a delayed,
	// shorter append from the same term must not roll us back).
	var reqLast, myLast uint64
	if len(req.Entries) > 0 {
		reqLast = req.Entries[len(req.Entries)-1].Term
	}
	if len(n.log) > 0 {
		myLast = n.log[len(n.log)-1].Term
	}
	if consensus.LogUpToDate(reqLast, len(req.Entries), myLast, len(n.log)) {
		n.log = append(n.log[:0], req.Entries...)
		// Outcomes beyond the applied prefix belong to displaced entries;
		// reset them so apply refills the live ones.
		n.results = append(n.results[:n.applied], make([]applyOutcome, len(n.log)-int(n.applied))...)
	}
	commit := req.Commit
	if l := uint64(len(n.log)); commit > l {
		commit = l
	}
	if commit > n.commit {
		n.commit = commit
		n.applyLocked()
		n.cond.Broadcast()
	}
	return &AppendReply{Term: n.term, OK: true}
}

// HandleVote is the voter half of elections.
func (n *Node) HandleVote(req *VoteRequest) *VoteReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term < n.term {
		return &VoteReply{Term: n.term}
	}
	// Vote suppression (the lease's other half): a replica that heard
	// from a live leader within ElectionTimeout ignores vote requests
	// entirely — without adopting the candidate's term, so a partitioned
	// replica's term inflation cannot depose a healthy leader.
	if n.role == leader && n.leaseDeadlineLocked().After(time.Now()) {
		return &VoteReply{Term: n.term}
	}
	if !n.lastContact.IsZero() && time.Since(n.lastContact) < n.cfg.ElectionTimeout {
		return &VoteReply{Term: n.term}
	}
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = -1
		n.role = follower
	}
	var myLast uint64
	if len(n.log) > 0 {
		myLast = n.log[len(n.log)-1].Term
	}
	if n.votedFor != -1 && n.votedFor != req.CandidateRank {
		return &VoteReply{Term: n.term}
	}
	if !consensus.LogUpToDate(req.LastLogTerm, int(req.LogLen), myLast, len(n.log)) {
		return &VoteReply{Term: n.term}
	}
	n.votedFor = req.CandidateRank
	return &VoteReply{Term: n.term, Granted: true}
}

// electionLoop watches for leader silence and stands for election.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(n.cfg.Rank)<<32))
	tick := n.cfg.ElectionTimeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		select {
		case <-n.closed:
			return
		case <-time.After(tick):
		}
		n.mu.Lock()
		if n.role == leader {
			n.mu.Unlock()
			continue
		}
		// Rank-staggered, jittered timeout: lower ranks stand first, so
		// simultaneous silence rarely splits the vote.
		timeout := n.cfg.ElectionTimeout +
			time.Duration(n.cfg.Rank)*n.cfg.ElectionTimeout/4 +
			time.Duration(rng.Int63n(int64(n.cfg.ElectionTimeout)/4+1))
		if !n.lastContact.IsZero() && time.Since(n.lastContact) < timeout {
			n.mu.Unlock()
			continue
		}
		// Stand: bump the term, vote for self.
		n.term++
		n.role = candidate
		n.votedFor = n.cfg.Rank
		n.leaderRank = -1
		n.lastContact = time.Now() // restart the clock for the next attempt
		req := &VoteRequest{
			Term:          n.term,
			CandidateRank: n.cfg.Rank,
			LogLen:        uint64(len(n.log)),
		}
		if len(n.log) > 0 {
			req.LastLogTerm = n.log[len(n.log)-1].Term
		}
		n.mu.Unlock()
		n.runElection(req)
	}
}

// runElection solicits votes for req and assumes leadership on a majority.
func (n *Node) runElection(req *VoteRequest) {
	votes := 1 // self
	var mu sync.Mutex
	var wg sync.WaitGroup
	var maxTerm uint64
	for i, addr := range n.cfg.Peers {
		if i == n.cfg.Rank {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeout/2)
			defer cancel()
			reply, err := n.cfg.Send.RequestVote(ctx, addr, req)
			if err != nil || reply == nil {
				return
			}
			mu.Lock()
			if reply.Granted {
				votes++
			}
			if reply.Term > maxTerm {
				maxTerm = reply.Term
			}
			mu.Unlock()
		}(addr)
	}
	wg.Wait()

	n.mu.Lock()
	defer n.mu.Unlock()
	if maxTerm > n.term {
		n.stepDownLocked(maxTerm)
		return
	}
	if n.role != candidate || n.term != req.Term {
		return // superseded while campaigning
	}
	if votes < consensus.QuorumSize(len(n.cfg.Peers)) {
		n.role = follower
		return
	}
	n.role = leader
	n.leaderRank = n.cfg.Rank
	n.matchLen = make([]uint64, len(n.cfg.Peers))
	n.ackedAt = make([]time.Time, len(n.cfg.Peers))
	// Commit the new term with a noop barrier (Raft's current-term rule).
	n.appendLocked(Command{Kind: CmdNoop})
	n.elections.Add(1)
	n.logf("rank %d elected leader at term %d (log %d, commit %d)", n.cfg.Rank, n.term, len(n.log), n.commit)
	if n.cfg.OnElection != nil {
		n.cfg.OnElection(n.term)
	}
	for i := range n.dirty {
		if i == n.cfg.Rank {
			continue
		}
		select {
		case n.dirty[i] <- struct{}{}:
		default:
		}
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Wire codecs for the consensus RPCs (used by internal/cluster's
// transport adapter; kept here so the formats live beside the types).

// Encode serializes an AppendRequest.
func (r *AppendRequest) Encode() []byte {
	e := rpc.NewEncoder(64 + 128*len(r.Entries))
	e.U64(r.Term)
	e.U64(uint64(r.LeaderRank))
	e.String(r.LeaderAddr)
	e.U64(r.Commit)
	e.U32(uint32(len(r.Entries)))
	for i := range r.Entries {
		e.U64(r.Entries[i].Term)
		e.Bytes32(r.Entries[i].Cmd.Encode())
	}
	return e.Bytes()
}

// DecodeAppendRequest parses an AppendRequest.
func DecodeAppendRequest(b []byte) (*AppendRequest, error) {
	d := rpc.NewDecoder(b)
	r := &AppendRequest{}
	r.Term = d.U64()
	r.LeaderRank = int(d.U64())
	r.LeaderAddr = d.String()
	r.Commit = d.U64()
	count := d.U32()
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		term := d.U64()
		cmd, err := DecodeCommand(d.Bytes32())
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, Entry{Term: term, Cmd: *cmd})
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: bad append request: %w", err)
	}
	return r, nil
}

// Encode serializes an AppendReply.
func (r *AppendReply) Encode() []byte {
	e := rpc.NewEncoder(32)
	e.U64(r.Term)
	e.Bool(r.OK)
	return e.Bytes()
}

// DecodeAppendReply parses an AppendReply.
func DecodeAppendReply(b []byte) (*AppendReply, error) {
	d := rpc.NewDecoder(b)
	r := &AppendReply{Term: d.U64(), OK: d.Bool()}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: bad append reply: %w", err)
	}
	return r, nil
}

// Encode serializes a VoteRequest.
func (r *VoteRequest) Encode() []byte {
	e := rpc.NewEncoder(32)
	e.U64(r.Term)
	e.U64(uint64(r.CandidateRank))
	e.U64(r.LastLogTerm)
	e.U64(r.LogLen)
	return e.Bytes()
}

// DecodeVoteRequest parses a VoteRequest.
func DecodeVoteRequest(b []byte) (*VoteRequest, error) {
	d := rpc.NewDecoder(b)
	r := &VoteRequest{Term: d.U64(), CandidateRank: int(d.U64()), LastLogTerm: d.U64(), LogLen: d.U64()}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: bad vote request: %w", err)
	}
	return r, nil
}

// Encode serializes a VoteReply.
func (r *VoteReply) Encode() []byte {
	e := rpc.NewEncoder(32)
	e.U64(r.Term)
	e.Bool(r.Granted)
	return e.Bytes()
}

// DecodeVoteReply parses a VoteReply.
func DecodeVoteReply(b []byte) (*VoteReply, error) {
	d := rpc.NewDecoder(b)
	r := &VoteReply{Term: d.U64(), Granted: d.Bool()}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("controlplane: bad vote reply: %w", err)
	}
	return r, nil
}
