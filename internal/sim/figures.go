package sim

import (
	"fmt"
	"io"
	"time"

	"curp/internal/stats"
	"curp/internal/witness"
)

// This file contains one driver per evaluation artifact of the paper.
// Each driver runs the relevant simulations and renders the same rows or
// series the paper reports, so `cmd/curpbench` and the bench harness print
// directly comparable output. See EXPERIMENTS.md for paper-vs-measured.

// FigureOps scales every figure driver; benchmarks lower it for speed.
var FigureOps = 20000

// Table1 prints the simulated cluster configuration substituted for the
// paper's hardware table.
func Table1(w io.Writer) {
	t := stats.NewTable("Table 1: simulated cluster configuration (substitutes the paper's testbed)",
		"parameter", "RAMCloud-like sim", "Redis-like sim")
	kv := KVParams{}.withDefaults()
	rd := RedisParams{}.withDefaults()
	t.AddRow("network one-way latency", kv.NetDelay, rd.NetDelay)
	t.AddRow("latency jitter (lognormal σ)", fmt.Sprintf("%.2f", kv.NetSigma), fmt.Sprintf("%.2f", rd.NetSigma))
	t.AddRow("master dispatch cost/RPC", kv.DispatchCost, "-")
	t.AddRow("op execution cost", kv.ExecCost, rd.ExecCost)
	t.AddRow("worker threads", kv.Workers, "1 (event loop)")
	t.AddRow("backup append cost", kv.BackupCost, "-")
	t.AddRow("witness record cost", kv.WitnessCost, rd.ExecCost/2)
	t.AddRow("fsync latency (median)", "-", rd.FsyncCost)
	t.AddRow("sync batch limit", 50, "event-loop cycle")
	t.Render(w)
}

// Fig5 reproduces the write-latency CCDF: sequential 100B writes under
// each replication mode.
func Fig5(w io.Writer) map[string]*KVResult {
	configs := []struct {
		name string
		p    KVParams
	}{
		{"Original RAMCloud (f=3)", KVParams{Mode: ModeOriginal, F: 3}},
		{"CURP (f=3)", KVParams{Mode: ModeCURP, F: 3}},
		{"CURP (f=2)", KVParams{Mode: ModeCURP, F: 2}},
		{"CURP (f=1)", KVParams{Mode: ModeCURP, F: 1}},
		{"Unreplicated", KVParams{Mode: ModeUnreplicated}},
	}
	out := make(map[string]*KVResult)
	t := stats.NewTable("Figure 5: 100B write latency (1 client, sequential)",
		"config", "p50", "p90", "p99", "p99.9")
	for _, c := range configs {
		p := c.p
		p.Clients = 1
		p.Ops = FigureOps
		p.Seed = 51
		r := RunKV(p)
		out[c.name] = r
		t.AddRow(c.name,
			time.Duration(r.WriteLatency.Percentile(50)),
			time.Duration(r.WriteLatency.Percentile(90)),
			time.Duration(r.WriteLatency.Percentile(99)),
			time.Duration(r.WriteLatency.Percentile(99.9)))
	}
	t.Render(w)
	return out
}

// Fig6 reproduces write throughput vs client count.
func Fig6(w io.Writer) map[string][]float64 {
	clientCounts := []int{1, 2, 5, 10, 15, 20, 25, 30}
	configs := []struct {
		name string
		p    KVParams
	}{
		{"Unreplicated", KVParams{Mode: ModeUnreplicated}},
		{"Async (f=3)", KVParams{Mode: ModeAsync, F: 3}},
		{"CURP (f=1)", KVParams{Mode: ModeCURP, F: 1}},
		{"CURP (f=2)", KVParams{Mode: ModeCURP, F: 2}},
		{"CURP (f=3)", KVParams{Mode: ModeCURP, F: 3}},
		{"Original RAMCloud", KVParams{Mode: ModeOriginal, F: 3}},
	}
	headers := []string{"config"}
	for _, c := range clientCounts {
		headers = append(headers, fmt.Sprintf("%d cli", c))
	}
	t := stats.NewTable("Figure 6: write throughput (k ops/s) vs clients", headers...)
	out := make(map[string][]float64)
	for _, c := range configs {
		row := []interface{}{c.name}
		for _, n := range clientCounts {
			p := c.p
			p.Clients = n
			p.Ops = FigureOps
			p.Seed = 61
			r := RunKV(p)
			out[c.name] = append(out[c.name], r.ThroughputOpsPerSec)
			row = append(row, fmt.Sprintf("%.0f", r.ThroughputOpsPerSec/1000))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return out
}

// Fig7 reproduces the YCSB-A/B latency CCDFs (Zipfian 0.99, 1M keys).
func Fig7(w io.Writer) map[string]*KVResult {
	out := make(map[string]*KVResult)
	for _, wl := range []struct {
		name      string
		writeFrac float64
	}{{"YCSB-A (50% writes)", 0.5}, {"YCSB-B (5% writes)", 0.05}} {
		t := stats.NewTable("Figure 7: "+wl.name+" write latency, Zipfian(0.99) on 1M keys",
			"config", "p50", "p99", "conflict%")
		for _, c := range []struct {
			name string
			p    KVParams
		}{
			{"Original RAMCloud", KVParams{Mode: ModeOriginal, F: 3}},
			{"CURP (f=3)", KVParams{Mode: ModeCURP, F: 3}},
			{"CURP (f=2)", KVParams{Mode: ModeCURP, F: 2}},
			{"CURP (f=1)", KVParams{Mode: ModeCURP, F: 1}},
			{"Async (f=3)", KVParams{Mode: ModeAsync, F: 3}},
			{"Unreplicated", KVParams{Mode: ModeUnreplicated}},
		} {
			p := c.p
			p.Clients = 1
			p.Ops = FigureOps
			p.WriteFraction = wl.writeFrac
			p.Zipfian = true
			p.Keys = 1_000_000
			p.Seed = 71
			r := RunKV(p)
			out[wl.name+"/"+c.name] = r
			writes := r.FastPath + r.SyncedByMaster + r.SlowPath
			conflict := 0.0
			if c.p.Mode == ModeCURP && writes > 0 {
				conflict = 100 * float64(r.SyncedByMaster+r.SlowPath) / float64(writes)
			}
			t.AddRow(c.name,
				time.Duration(r.WriteLatency.Percentile(50)),
				time.Duration(r.WriteLatency.Percentile(99)),
				fmt.Sprintf("%.2f", conflict))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return out
}

// Fig8 reproduces the Redis SET latency CDF.
func Fig8(w io.Writer) map[string]*RedisResult {
	out := make(map[string]*RedisResult)
	t := stats.NewTable("Figure 8: Redis 100B SET latency (1 client)",
		"config", "p50", "p90", "p99")
	for _, c := range []struct {
		name string
		p    RedisParams
	}{
		{"Original Redis (non-durable)", RedisParams{Mode: RedisNonDurable}},
		{"CURP (1 witness)", RedisParams{Mode: RedisCURP, Witnesses: 1}},
		{"CURP (2 witnesses)", RedisParams{Mode: RedisCURP, Witnesses: 2}},
		{"Original Redis (durable)", RedisParams{Mode: RedisDurable}},
	} {
		p := c.p
		p.Clients = 1
		p.Ops = FigureOps
		p.Seed = 81
		r := RunRedis(p)
		out[c.name] = r
		t.AddRow(c.name,
			time.Duration(r.Latency.Percentile(50)),
			time.Duration(r.Latency.Percentile(90)),
			time.Duration(r.Latency.Percentile(99)))
	}
	t.Render(w)
	return out
}

// Fig9 reproduces Redis throughput vs client count.
func Fig9(w io.Writer) map[string][]float64 {
	clientCounts := []int{1, 5, 10, 20, 40, 60}
	headers := []string{"config"}
	for _, c := range clientCounts {
		headers = append(headers, fmt.Sprintf("%d cli", c))
	}
	t := stats.NewTable("Figure 9: Redis SET throughput (k ops/s) vs clients", headers...)
	out := make(map[string][]float64)
	for _, c := range []struct {
		name string
		p    RedisParams
	}{
		{"Original Redis (non-durable)", RedisParams{Mode: RedisNonDurable}},
		{"CURP (1 witness)", RedisParams{Mode: RedisCURP, Witnesses: 1}},
		{"CURP (2 witnesses)", RedisParams{Mode: RedisCURP, Witnesses: 2}},
		{"Original Redis (durable)", RedisParams{Mode: RedisDurable}},
	} {
		row := []interface{}{c.name}
		for _, n := range clientCounts {
			p := c.p
			p.Clients = n
			p.Ops = FigureOps
			p.Seed = 91
			r := RunRedis(p)
			out[c.name] = append(out[c.name], r.ThroughputOpsPerSec)
			row = append(row, fmt.Sprintf("%.0f", r.ThroughputOpsPerSec/1000))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return out
}

// Fig10 reproduces median latency for SET/HMSET/INCR. Command type only
// changes the payload mix; the dominant costs (RPC legs, witness RPCs) are
// identical, which is the paper's finding too.
func Fig10(w io.Writer) {
	t := stats.NewTable("Figure 10: median Redis command latency",
		"command", "non-durable", "CURP 1W", "CURP 2W")
	for _, cmd := range []string{"SET", "HMSET", "INCR"} {
		row := []interface{}{cmd}
		for i, cfg := range []RedisParams{
			{Mode: RedisNonDurable},
			{Mode: RedisCURP, Witnesses: 1},
			{Mode: RedisCURP, Witnesses: 2},
		} {
			p := cfg
			p.Clients = 1
			p.Ops = FigureOps / 2
			p.Seed = 101 + int64(i) + int64(len(cmd)) // command varies the seed: distinct runs
			r := RunRedis(p)
			row = append(row, time.Duration(r.Latency.Percentile(50)))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// Fig11 reproduces the witness associativity simulation (§B.1).
func Fig11(w io.Writer) map[int][]float64 {
	slotCounts := []int{512, 1024, 2048, 3072, 4096}
	ways := []int{1, 2, 4, 8}
	headers := []string{"slots"}
	for _, wy := range ways {
		if wy == 1 {
			headers = append(headers, "direct")
		} else {
			headers = append(headers, fmt.Sprintf("%d-way", wy))
		}
	}
	t := stats.NewTable("Figure 11: expected records before a witness collision", headers...)
	out := make(map[int][]float64)
	for _, slots := range slotCounts {
		row := []interface{}{slots}
		for _, wy := range ways {
			v := witness.ExpectedRecordsToCollision(slots, wy, 300, int64(slots*10+wy))
			out[slots] = append(out[slots], v)
			row = append(row, fmt.Sprintf("%.0f", v))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return out
}

// Fig12 reproduces throughput vs minimum sync batch size (§C.1).
func Fig12(w io.Writer) map[string][]float64 {
	batches := []int{1, 5, 10, 20, 30, 40, 50}
	headers := []string{"config"}
	for _, b := range batches {
		headers = append(headers, fmt.Sprintf("b=%d", b))
	}
	t := stats.NewTable("Figure 12: throughput (k ops/s) vs min sync batch (24 clients)", headers...)
	out := make(map[string][]float64)
	for _, c := range []struct {
		name string
		p    KVParams
	}{
		{"Unreplicated", KVParams{Mode: ModeUnreplicated}},
		{"Async (f=3)", KVParams{Mode: ModeAsync, F: 3}},
		{"CURP (f=1)", KVParams{Mode: ModeCURP, F: 1}},
		{"CURP (f=3)", KVParams{Mode: ModeCURP, F: 3}},
		{"Original RAMCloud", KVParams{Mode: ModeOriginal, F: 3}},
	} {
		row := []interface{}{c.name}
		for _, b := range batches {
			p := c.p
			p.Clients = 24
			p.Ops = FigureOps
			p.SyncBatch = b
			p.Seed = 121
			r := RunKV(p)
			out[c.name] = append(out[c.name], r.ThroughputOpsPerSec)
			row = append(row, fmt.Sprintf("%.0f", r.ThroughputOpsPerSec/1000))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return out
}

// Fig13 reproduces Redis latency vs throughput (closed-loop load sweep).
func Fig13(w io.Writer) {
	t := stats.NewTable("Figure 13: Redis mean latency vs achieved throughput",
		"config", "clients", "throughput (k/s)", "mean latency")
	for _, c := range []struct {
		name string
		p    RedisParams
	}{
		{"Original Redis (non-durable)", RedisParams{Mode: RedisNonDurable}},
		{"CURP (1 witness)", RedisParams{Mode: RedisCURP, Witnesses: 1}},
		{"CURP (2 witnesses)", RedisParams{Mode: RedisCURP, Witnesses: 2}},
		{"Original Redis (durable)", RedisParams{Mode: RedisDurable}},
	} {
		for _, n := range []int{1, 4, 8, 16, 32, 64} {
			p := c.p
			p.Clients = n
			p.Ops = FigureOps
			p.Seed = 131
			r := RunRedis(p)
			t.AddRow(c.name, n,
				fmt.Sprintf("%.0f", r.ThroughputOpsPerSec/1000),
				time.Duration(int64(r.Latency.Mean())))
		}
	}
	t.Render(w)
}

// ResourceReport prints the §5.2 resource-consumption numbers.
func ResourceReport(w io.Writer) {
	t := stats.NewTable("§5.2 witness resource consumption", "metric", "value", "paper")
	// Witness capacity: records/s at the calibrated per-record cost.
	p := KVParams{}.withDefaults()
	recPerSec := float64(time.Second) / float64(p.WitnessCost)
	t.AddRow("witness record capacity (1 thread)", fmt.Sprintf("%.2fM/s", recPerSec/1e6), "1.27M/s")
	// Memory: default witness geometry.
	wt := witness.MustNew(1, witness.DefaultConfig())
	t.AddRow("memory per master-witness pair", fmt.Sprintf("%.1f MB", float64(wt.MemoryFootprint())/(1<<20)), "≈9 MB")
	// Network amplification.
	base := KVParams{Clients: 4, Ops: 5000, Seed: 3}
	curp := RunKV(KVParams{Mode: ModeCURP, F: 3, Clients: base.Clients, Ops: base.Ops, Seed: base.Seed})
	orig := RunKV(KVParams{Mode: ModeOriginal, F: 3, Clients: base.Clients, Ops: base.Ops, Seed: base.Seed})
	t.AddRow("payload network amplification (f=3)",
		fmt.Sprintf("%.2fx", float64(curp.PayloadBytes)/float64(orig.PayloadBytes)), "1.75x")
	t.Render(w)
}
