package sim

import (
	"time"

	"curp/internal/commute"
	"curp/internal/core"
	"curp/internal/rifl"
	"curp/internal/stats"
	"curp/internal/witness"
	"curp/internal/workload"
)

// Mode selects the replication protocol under simulation, matching the
// configurations of the paper's Figures 5, 6, 7, and 12.
type Mode int

const (
	// ModeUnreplicated: no backups, no witnesses (the latency floor).
	ModeUnreplicated Mode = iota
	// ModeOriginal: the base system — every write waits for backup sync
	// before the reply (2 RTTs).
	ModeOriginal
	// ModeCURP: speculative replies + witness recording (1 RTT when
	// commutative).
	ModeCURP
	// ModeAsync: replies before sync, no witnesses — fast but unsafe; the
	// paper's upper bound for CURP throughput.
	ModeAsync
)

// String names the mode like the paper's figure legends.
func (m Mode) String() string {
	switch m {
	case ModeUnreplicated:
		return "Unreplicated"
	case ModeOriginal:
		return "Original"
	case ModeCURP:
		return "CURP"
	case ModeAsync:
		return "Async"
	}
	return "?"
}

// KVParams configures a RAMCloud-like cluster simulation. Defaults are
// calibrated so the simulated medians land near the paper's measurements
// (unreplicated ≈ 6.9µs, CURP f=3 ≈ 7.3µs, original ≈ 13.8µs), but the
// claims under reproduction are the shapes, not the absolute numbers.
type KVParams struct {
	Mode Mode
	// F is the number of backups and witnesses.
	F int
	// Clients is the number of closed-loop clients.
	Clients int
	// Ops is the total number of writes to complete.
	Ops int
	// SyncBatch is the minimum unsynced-op count that triggers a sync
	// (the x-axis of Figure 12). One sync is outstanding at a time, so
	// effective batches grow under load regardless.
	SyncBatch int
	// WriteFraction is the probability an op is a write (1.0 for the
	// write-only figures; 0.5/0.05 for YCSB-A/B).
	WriteFraction float64
	// Keys is the key-space size; Zipfian selects the skewed distribution
	// of Figure 7.
	Keys    uint64
	Zipfian bool
	// ValueSize is the write payload in bytes (100 in the paper).
	ValueSize int
	// Seed makes the run deterministic.
	Seed int64

	// Cost model (zero values take calibrated defaults).
	NetDelay     Time    // one-way network latency (median)
	NetSigma     float64 // lognormal shape of per-message jitter
	NetJitter    Time    // lognormal scale of per-message jitter
	DispatchCost Time    // master dispatch-thread cost per RPC event
	ExecCost     Time    // worker cost per operation
	Workers      int     // master worker threads
	BackupCost   Time    // backup per-sync-RPC processing cost
	WitnessCost  Time    // witness per-record processing cost
	ClientSend   Time    // client per-RPC send cost
	ClientRecv   Time    // client per-response processing cost
}

// withDefaults fills in the calibrated cost model.
func (p KVParams) withDefaults() KVParams {
	def := func(v *Time, d Time) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.NetDelay, 2250*time.Nanosecond)
	def(&p.DispatchCost, 650*time.Nanosecond)
	def(&p.ExecCost, 1000*time.Nanosecond)
	def(&p.BackupCost, 1000*time.Nanosecond)
	def(&p.WitnessCost, 750*time.Nanosecond)
	def(&p.ClientSend, 100*time.Nanosecond)
	def(&p.ClientRecv, 150*time.Nanosecond)
	if p.NetJitter == 0 {
		p.NetJitter = 60 * time.Nanosecond
	}
	if p.NetSigma == 0 {
		p.NetSigma = 0.7
	}
	if p.Workers == 0 {
		p.Workers = 7
	}
	if p.SyncBatch == 0 {
		p.SyncBatch = 50
	}
	if p.Clients == 0 {
		p.Clients = 1
	}
	if p.Ops == 0 {
		p.Ops = 10000
	}
	if p.F == 0 && p.Mode != ModeUnreplicated {
		p.F = 3
	}
	if p.Keys == 0 {
		p.Keys = 1 << 20
	}
	if p.WriteFraction == 0 {
		p.WriteFraction = 1.0
	}
	if p.ValueSize == 0 {
		p.ValueSize = 100
	}
	return p
}

// KVResult aggregates one simulation run.
type KVResult struct {
	Params KVParams
	// WriteLatency is the distribution of client-observed write latency.
	WriteLatency stats.Histogram
	// ReadLatency is the distribution for reads (mixed workloads).
	ReadLatency stats.Histogram
	// Elapsed is the simulated duration of the run.
	Elapsed Time
	// ThroughputOpsPerSec is completed ops over elapsed time.
	ThroughputOpsPerSec float64
	// FastPath counts 1-RTT completions; SyncedByMaster counts 2-RTT
	// conflict-path completions; SlowPath counts explicit sync RPCs.
	FastPath, SyncedByMaster, SlowPath int
	// WitnessRejects counts witness record rejections.
	WitnessRejects int
	// NetworkBytes is total bytes moved, including RPC headers and acks.
	NetworkBytes int64
	// PayloadBytes counts value-carrying copies only — the unit of the
	// paper's §5.2 75%% amplification claim (7 copies vs 4 at f=3).
	PayloadBytes int64
	// GCRPCs counts witness garbage-collection RPCs sent by the master.
	GCRPCs int
	// Syncs counts backup sync rounds; SyncedOps the entries they carried
	// (SyncedOps/Syncs = effective batch, §C.1).
	Syncs, SyncedOps int
}

// kvSim is the wiring of one run.
type kvSim struct {
	sim *Sim
	p   KVParams
	res *KVResult

	dispatch *Resource
	workers  *Pool
	clients  []*Resource
	backups  []*Resource
	wservers []*Resource
	wstate   []*witness.Witness
	mstate   *core.MasterState
	lsn      uint64

	// pendingSynced lists executed-but-unsynced op records for witness gc.
	pendingSynced []witness.GCKey
	syncActive    bool
	syncWaiters   []syncWaiter

	completed int
	done      bool
	endAt     Time
	seq       rifl.Seq

	keyOf func() uint64
}

type syncWaiter struct {
	target uint64
	fn     func()
}

// opRuntime tracks one client operation in flight.
type opRuntime struct {
	clientID  int
	start     Time
	key       uint64
	id        rifl.RPCID
	isWrite   bool
	synced    bool
	masterAt  Time
	masterOK  bool
	wAccepts  int
	wReplies  int
	needsSync bool
}

// RunKV executes one RAMCloud-style simulation.
func RunKV(p KVParams) *KVResult {
	p = p.withDefaults()
	s := New(p.Seed)
	k := &kvSim{
		sim:      s,
		p:        p,
		res:      &KVResult{Params: p},
		dispatch: &Resource{},
		workers:  NewPool(p.Workers),
		clients:  make([]*Resource, p.Clients),
		mstate: core.NewMasterState(core.MasterConfig{
			SyncBatchSize: p.SyncBatch,
			SyncEveryOp:   p.Mode == ModeOriginal,
		}),
	}
	if p.Mode == ModeOriginal || p.Mode == ModeCURP || p.Mode == ModeAsync {
		for i := 0; i < p.F; i++ {
			k.backups = append(k.backups, &Resource{})
		}
	}
	if p.Mode == ModeCURP {
		for i := 0; i < p.F; i++ {
			k.wservers = append(k.wservers, &Resource{})
			k.wstate = append(k.wstate, witness.MustNew(1, witness.DefaultConfig()))
		}
	}
	if p.Zipfian {
		z := workload.NewScrambledZipfian(p.Keys, workload.DefaultZipfTheta, p.Seed+1)
		k.keyOf = z.Next
	} else {
		u := workload.NewUniform(p.Keys, p.Seed+1)
		k.keyOf = u.Next
	}
	// Start the closed-loop clients, staggered slightly.
	for c := 0; c < p.Clients; c++ {
		c := c
		k.clients[c] = &Resource{}
		s.After(Time(c)*100*time.Nanosecond, func() { k.startOp(c) })
	}
	s.Run(0)
	k.res.Elapsed = k.endAt
	if k.endAt > 0 {
		k.res.ThroughputOpsPerSec = float64(k.completed) / k.endAt.Seconds()
	}
	return k.res
}

// net returns a sampled one-way network delay.
func (k *kvSim) net() Time {
	return k.p.NetDelay + k.sim.LogNormal(k.p.NetJitter, k.p.NetSigma)
}

// msgBytes estimates one message's wire size.
func (k *kvSim) msgBytes(payload int) int64 {
	return int64(payload + 60) // headers
}

func (k *kvSim) startOp(clientID int) {
	if k.done {
		return
	}
	k.seq++
	op := &opRuntime{
		clientID: clientID,
		start:    k.sim.Now(),
		key:      k.keyOf(),
		id:       rifl.RPCID{Client: rifl.ClientID(clientID + 1), Seq: k.seq},
		isWrite:  k.sim.Rand().Float64() < k.p.WriteFraction,
	}
	sendDone := k.sim.Now()
	// Witness record RPCs leave first (writes under CURP only); the
	// update RPC follows. Each send occupies the client's NIC path for
	// ClientSend, so the master RPC departs f send-costs later — the
	// client-side origin of CURP's small per-replica latency overhead
	// (§5.1: +0.4µs at f=3).
	if op.isWrite && k.p.Mode == ModeCURP {
		for i := range k.wservers {
			i := i
			sendDone += k.p.ClientSend
			k.res.NetworkBytes += k.msgBytes(k.p.ValueSize)
			k.res.PayloadBytes += int64(k.p.ValueSize)
			k.sim.At(sendDone+k.net(), func() { k.witnessArrive(op, i) })
		}
	}
	// Master RPC (update or read).
	sendDone += k.p.ClientSend
	k.res.NetworkBytes += k.msgBytes(k.p.ValueSize)
	if op.isWrite {
		k.res.PayloadBytes += int64(k.p.ValueSize)
	}
	k.sim.At(sendDone+k.net(), func() { k.masterArrive(op) })
}

// masterArrive models the master receiving the client RPC.
func (k *kvSim) masterArrive(op *opRuntime) {
	t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
	k.sim.At(t, func() {
		te := k.workers.Acquire(k.sim.Now(), k.p.ExecCost)
		k.sim.At(te, func() { k.masterExecute(op) })
	})
}

// masterExecute runs the operation at the master and decides the reply
// path using the real CURP master state machine.
func (k *kvSim) masterExecute(op *opRuntime) {
	keyHashes := []uint64{op.key}
	if !op.isWrite {
		// Read: if it touches an unsynced key, wait for a sync first.
		if k.p.Mode == ModeCURP || k.p.Mode == ModeAsync {
			if k.mstate.Conflicts(keyHashes, commute.ClassWrite) {
				k.mstate.CountReadBlock()
				k.joinSync(k.mstate.Head(), func() { k.replyToClient(op, true) })
				return
			}
		}
		k.replyToClient(op, true)
		return
	}
	conflict := k.mstate.Conflicts(keyHashes, commute.ClassWrite)
	k.lsn++
	lsn := k.lsn
	k.mstate.NoteMutation(keyHashes, lsn, commute.ClassWrite)
	if k.p.Mode == ModeCURP {
		k.pendingSynced = append(k.pendingSynced, witness.GCKey{KeyHash: op.key, ID: op.id})
	}
	switch k.p.Mode {
	case ModeUnreplicated:
		k.replyToClient(op, true)
	case ModeOriginal:
		// The base system replicates every write with its own set of
		// replication RPCs before replying — no cross-write coalescing
		// (that coalescing is precisely what CURP's decoupled syncs
		// enable, §4.4). This is why the original master handles 4 RPCs
		// per write and saturates its dispatch thread ≈4× earlier.
		k.ownSync(lsn, func() { k.replyToClient(op, true) })
	case ModeAsync, ModeCURP:
		if conflict {
			k.joinSync(lsn, func() {
				op.synced = true
				k.replyToClient(op, true)
			})
			return
		}
		k.replyToClient(op, false)
		if k.mstate.NeedsBatchSync() {
			k.maybeStartSync()
		}
	}
}

// replyToClient sends the master's response (synced tags the conflict
// path).
func (k *kvSim) replyToClient(op *opRuntime, synced bool) {
	op.synced = op.synced || synced
	t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
	k.res.NetworkBytes += k.msgBytes(16)
	k.sim.At(t+k.net(), func() {
		// Response processing occupies the client thread; with f witness
		// replies arriving around the same time this queueing is the
		// paper's ≈0.4µs client-side overhead for f=3 (§5.1).
		tc := k.clients[op.clientID].Acquire(k.sim.Now(), k.p.ClientRecv)
		k.sim.At(tc, func() {
			op.masterOK = true
			op.masterAt = k.sim.Now()
			k.clientProgress(op)
		})
	})
}

// witnessArrive models one witness processing a record RPC.
func (k *kvSim) witnessArrive(op *opRuntime, i int) {
	t := k.wservers[i].Acquire(k.sim.Now(), k.p.WitnessCost)
	k.sim.At(t, func() {
		res := k.wstate[i].Record(1, []uint64{op.key}, op.id, nil, commute.ClassWrite)
		if !res.Ok() {
			k.res.WitnessRejects++
		}
		k.res.NetworkBytes += k.msgBytes(8)
		k.sim.At(k.sim.Now()+k.net(), func() {
			tc := k.clients[op.clientID].Acquire(k.sim.Now(), k.p.ClientRecv)
			k.sim.At(tc, func() {
				op.wReplies++
				if res.Ok() {
					op.wAccepts++
				}
				k.clientProgress(op)
			})
		})
	})
}

// clientProgress applies the CURP completion rule at the client.
func (k *kvSim) clientProgress(op *opRuntime) {
	if !op.masterOK {
		return
	}
	expect := 0
	if op.isWrite && k.p.Mode == ModeCURP && !op.synced {
		expect = len(k.wservers)
	}
	if op.synced || !op.isWrite || k.p.Mode != ModeCURP {
		k.completeOp(op)
		return
	}
	if op.wReplies < expect {
		return
	}
	if op.wAccepts == expect {
		k.completeOp(op)
		return
	}
	// Slow path: sync RPC to the master (one extra RTT).
	if op.needsSync {
		return
	}
	op.needsSync = true
	k.res.SlowPath++
	k.res.NetworkBytes += k.msgBytes(8)
	k.sim.At(k.sim.Now()+k.p.ClientSend+k.net(), func() {
		t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
		k.sim.At(t, func() {
			k.joinSync(k.mstate.Head(), func() {
				t2 := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
				k.res.NetworkBytes += k.msgBytes(8)
				k.sim.At(t2+k.net(), func() { k.completeOp(op) })
			})
		})
	})
}

// completeOp finishes the op at the client and starts the next one.
func (k *kvSim) completeOp(op *opRuntime) {
	end := k.sim.Now()
	lat := end - op.start
	if op.isWrite {
		k.res.WriteLatency.Record(int64(lat))
		if k.p.Mode == ModeCURP {
			switch {
			case op.needsSync:
				// counted at issue time
			case op.synced:
				k.res.SyncedByMaster++
			default:
				k.res.FastPath++
			}
		}
	} else {
		k.res.ReadLatency.Record(int64(lat))
	}
	k.completed++
	if k.completed >= k.p.Ops {
		if !k.done {
			k.done = true
			k.endAt = end
		}
		return
	}
	clientID := op.clientID
	k.sim.At(end, func() { k.startOp(clientID) })
}

// ownSync replicates one op's entries with a dedicated RPC set (original
// RAMCloud behaviour): F appends, F acks, then fn.
func (k *kvSim) ownSync(lsn uint64, fn func()) {
	remaining := len(k.backups)
	if remaining == 0 {
		fn()
		return
	}
	for i := range k.backups {
		i := i
		t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
		k.res.NetworkBytes += k.msgBytes(k.p.ValueSize + 40)
		k.res.PayloadBytes += int64(k.p.ValueSize)
		k.sim.At(t+k.net(), func() {
			tb := k.backups[i].Acquire(k.sim.Now(), k.p.BackupCost)
			k.res.NetworkBytes += k.msgBytes(8)
			k.sim.At(tb+k.net(), func() {
				td := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
				k.sim.At(td, func() {
					remaining--
					if remaining == 0 {
						k.mstate.NoteSync(lsn)
						k.res.Syncs++
						k.res.SyncedOps++
						fn()
					}
				})
			})
		})
	}
}

// joinSync registers fn to run once every entry up to target is on all
// backups, starting a sync round if none is active.
func (k *kvSim) joinSync(target uint64, fn func()) {
	if k.mstate.SyncedLSN() >= target {
		fn()
		return
	}
	k.syncWaiters = append(k.syncWaiters, syncWaiter{target: target, fn: fn})
	k.maybeStartSync()
}

// maybeStartSync starts a sync round if none is outstanding (the paper's
// single-outstanding-sync discipline, which batches naturally, §C.1).
func (k *kvSim) maybeStartSync() {
	if k.syncActive || len(k.backups) == 0 {
		return
	}
	head := k.mstate.Head()
	if head <= k.mstate.SyncedLSN() {
		return
	}
	k.syncActive = true
	covered := head
	batch := int(head - k.mstate.SyncedLSN())
	k.res.Syncs++
	k.res.SyncedOps += batch
	gcKeys := k.pendingSynced
	k.pendingSynced = nil

	remaining := len(k.backups)
	for i := range k.backups {
		i := i
		t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
		k.res.NetworkBytes += k.msgBytes(batch * (k.p.ValueSize + 40))
		k.res.PayloadBytes += int64(batch * k.p.ValueSize)
		k.sim.At(t+k.net(), func() {
			tb := k.backups[i].Acquire(k.sim.Now(), k.p.BackupCost)
			k.res.NetworkBytes += k.msgBytes(8)
			k.sim.At(tb+k.net(), func() {
				td := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
				k.sim.At(td, func() {
					remaining--
					if remaining > 0 {
						return
					}
					k.finishSync(covered, gcKeys)
				})
			})
		})
	}
}

// finishSync completes a sync round: advance the synced position, wake
// waiters, garbage-collect witnesses, and chain the next round if needed.
func (k *kvSim) finishSync(covered uint64, gcKeys []witness.GCKey) {
	k.mstate.NoteSync(covered)
	var still []syncWaiter
	for _, w := range k.syncWaiters {
		if w.target <= covered {
			w.fn()
		} else {
			still = append(still, w)
		}
	}
	k.syncWaiters = still
	// Witness gc (CURP only): one RPC per witness, batched keys.
	if k.p.Mode == ModeCURP && len(gcKeys) > 0 {
		for i := range k.wservers {
			i := i
			k.res.GCRPCs++
			t := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
			k.res.NetworkBytes += k.msgBytes(len(gcKeys) * 24)
			k.sim.At(t+k.net(), func() {
				tw := k.wservers[i].Acquire(k.sim.Now(), k.p.WitnessCost)
				k.sim.At(tw, func() {
					k.wstate[i].GC(gcKeys)
					k.res.NetworkBytes += k.msgBytes(8)
					k.sim.At(k.sim.Now()+k.net(), func() {
						td := k.dispatch.Acquire(k.sim.Now(), k.p.DispatchCost)
						k.sim.At(td, func() {}) // gc ack occupies dispatch
					})
				})
			})
		}
	}
	k.syncActive = false
	if len(k.syncWaiters) > 0 || k.mstate.NeedsBatchSync() {
		k.maybeStartSync()
	}
}
