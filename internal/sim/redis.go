package sim

import (
	"time"

	"curp/internal/stats"
)

// RedisMode selects the configuration of the paper's Redis experiments
// (Figures 8, 9, 10, 13).
type RedisMode int

const (
	// RedisNonDurable: the stock cache — no fsync before replying.
	RedisNonDurable RedisMode = iota
	// RedisDurable: appendfsync=always — fsync once per event-loop cycle
	// before replying to that cycle's clients (the paper notes this
	// native batching, §C.2).
	RedisDurable
	// RedisCURP: reply without fsync; durability from witness recording,
	// fsync in the background.
	RedisCURP
)

// String names the mode like the paper's figure legends.
func (m RedisMode) String() string {
	switch m {
	case RedisNonDurable:
		return "Original Redis (non-durable)"
	case RedisDurable:
		return "Original Redis (durable)"
	case RedisCURP:
		return "CURP"
	}
	return "?"
}

// RedisParams configures a Redis-style simulation. The server is an
// event-loop: each cycle drains all pending requests, executes them,
// optionally fsyncs once, then replies to all — exactly the structure the
// paper describes for durable Redis (§C.2). TCP legs carry heavy-tailed
// latency (the effect behind the 2-witness tail in Figure 8).
type RedisParams struct {
	Mode RedisMode
	// Witnesses is the number of witness servers (CURP mode).
	Witnesses int
	// Clients is the number of closed-loop clients.
	Clients int
	// Ops is the total number of SETs to complete.
	Ops int
	// Seed makes the run deterministic.
	Seed int64

	// Cost model.
	NetDelay   Time    // one-way TCP latency (median)
	NetJitter  Time    // lognormal jitter scale
	NetSigma   float64 // lognormal jitter shape (heavy Redis/TCP tail)
	ExecCost   Time    // per-command execution cost
	FsyncCost  Time    // fsync latency median (NVMe: 50–100µs)
	FsyncSigma float64 // fsync latency shape
	SyscallRT  Time    // extra client syscall cost per additional RPC
	// CURPGCCost is extra per-op server work for witness gc bookkeeping.
	CURPGCCost Time
}

func (p RedisParams) withDefaults() RedisParams {
	def := func(v *Time, d Time) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.NetDelay, 10*time.Microsecond)
	def(&p.ExecCost, 5*time.Microsecond)
	def(&p.FsyncCost, 70*time.Microsecond)
	def(&p.SyscallRT, 2500*time.Nanosecond)
	def(&p.CURPGCCost, 1100*time.Nanosecond)
	if p.NetJitter == 0 {
		p.NetJitter = 1200 * time.Nanosecond
	}
	if p.NetSigma == 0 {
		p.NetSigma = 1.1
	}
	if p.FsyncSigma == 0 {
		p.FsyncSigma = 0.25
	}
	if p.Clients == 0 {
		p.Clients = 1
	}
	if p.Ops == 0 {
		p.Ops = 20000
	}
	if p.Mode == RedisCURP && p.Witnesses == 0 {
		p.Witnesses = 1
	}
	return p
}

// RedisResult aggregates one run.
type RedisResult struct {
	Params              RedisParams
	Latency             stats.Histogram
	Elapsed             Time
	ThroughputOpsPerSec float64
	Fsyncs              int
}

type redisOp struct {
	clientID int
	start    Time
	wReplies int
	wDone    bool
	sDone    bool
}

type redisSim struct {
	sim *Sim
	p   RedisParams
	res *RedisResult

	// Event-loop server state.
	pending   []*redisOp
	loopBusy  bool
	witnesses []*Resource

	completed int
	done      bool
	endAt     Time
}

// RunRedis executes one Redis-style simulation.
func RunRedis(p RedisParams) *RedisResult {
	p = p.withDefaults()
	r := &redisSim{sim: New(p.Seed), p: p, res: &RedisResult{Params: p}}
	for i := 0; i < p.Witnesses; i++ {
		r.witnesses = append(r.witnesses, &Resource{})
	}
	for c := 0; c < p.Clients; c++ {
		c := c
		r.sim.After(Time(c)*200*time.Nanosecond, func() { r.startOp(c) })
	}
	r.sim.Run(0)
	r.res.Elapsed = r.endAt
	if r.endAt > 0 {
		r.res.ThroughputOpsPerSec = float64(r.completed) / r.endAt.Seconds()
	}
	return r.res
}

func (r *redisSim) net() Time {
	return r.p.NetDelay + r.sim.LogNormal(r.p.NetJitter, r.p.NetSigma)
}

func (r *redisSim) startOp(clientID int) {
	if r.done {
		return
	}
	op := &redisOp{clientID: clientID, start: r.sim.Now()}
	// Request to the server.
	r.sim.After(r.net(), func() { r.serverReceive(op) })
	// Witness records in parallel (CURP): each extra RPC costs the client
	// two syscalls (§5.4 measured ≈2.5µs each for send+recv combined).
	if r.p.Mode == RedisCURP {
		for i := range r.witnesses {
			i := i
			extra := r.p.SyscallRT * Time(i+1)
			r.sim.After(extra+r.net(), func() {
				t := r.witnesses[i].Acquire(r.sim.Now(), r.p.ExecCost/2)
				r.sim.At(t, func() {
					r.sim.After(r.net(), func() {
						op.wReplies++
						if op.wReplies == len(r.witnesses) {
							op.wDone = true
							r.clientProgress(op)
						}
					})
				})
			})
		}
	}
}

// serverReceive queues the request for the next event-loop cycle.
func (r *redisSim) serverReceive(op *redisOp) {
	r.pending = append(r.pending, op)
	r.maybeRunLoop()
}

// maybeRunLoop models one event-loop cycle: drain the queue, execute all,
// fsync once (durable mode), reply to all.
func (r *redisSim) maybeRunLoop() {
	if r.loopBusy || len(r.pending) == 0 {
		return
	}
	r.loopBusy = true
	batch := r.pending
	r.pending = nil
	cost := Time(len(batch)) * r.p.ExecCost
	if r.p.Mode == RedisCURP {
		cost += Time(len(batch)) * r.p.CURPGCCost
	}
	finish := func() {
		for _, op := range batch {
			op := op
			r.sim.After(r.net(), func() {
				op.sDone = true
				r.clientProgress(op)
			})
		}
		r.loopBusy = false
		r.maybeRunLoop()
	}
	r.sim.After(cost, func() {
		if r.p.Mode == RedisDurable {
			fs := r.sim.LogNormal(r.p.FsyncCost, r.p.FsyncSigma)
			r.res.Fsyncs++
			r.sim.After(fs, finish)
		} else {
			// CURP fsyncs in the background (not on the critical path);
			// count them for reporting.
			if r.p.Mode == RedisCURP {
				r.res.Fsyncs++
			}
			finish()
		}
	})
}

func (r *redisSim) clientProgress(op *redisOp) {
	if !op.sDone {
		return
	}
	if r.p.Mode == RedisCURP && !op.wDone {
		return
	}
	end := r.sim.Now()
	r.res.Latency.Record(int64(end - op.start))
	r.completed++
	if r.completed >= r.p.Ops {
		if !r.done {
			r.done = true
			r.endAt = end
		}
		return
	}
	clientID := op.clientID
	r.sim.At(end, func() { r.startOp(clientID) })
}
