package sim

import (
	"strings"
	"testing"
)

// The figure drivers are exercised with a reduced op count so `go test`
// covers the same code paths cmd/curpbench runs at full scale, and so the
// rendered tables always carry the rows the paper's artifacts have.

func withSmallFigures(t *testing.T) {
	t.Helper()
	old := FigureOps
	FigureOps = 1200
	t.Cleanup(func() { FigureOps = old })
}

func TestTable1Driver(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	for _, want := range []string{"network one-way latency", "fsync latency", "witness record cost"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table1 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFig5Driver(t *testing.T) {
	withSmallFigures(t)
	var sb strings.Builder
	res := Fig5(&sb)
	if len(res) != 5 {
		t.Fatalf("fig5 configs = %d", len(res))
	}
	for _, want := range []string{"Original RAMCloud (f=3)", "CURP (f=3)", "Unreplicated", "p99.9"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
	// The headline ordering must hold even at reduced op counts.
	if res["CURP (f=3)"].WriteLatency.Percentile(50) >= res["Original RAMCloud (f=3)"].WriteLatency.Percentile(50) {
		t.Fatal("CURP median not below original")
	}
}

func TestFig6Driver(t *testing.T) {
	withSmallFigures(t)
	var sb strings.Builder
	series := Fig6(&sb)
	if len(series) != 6 {
		t.Fatalf("fig6 series = %d", len(series))
	}
	curp := series["CURP (f=3)"]
	orig := series["Original RAMCloud"]
	if len(curp) != 8 || len(orig) != 8 {
		t.Fatalf("series lengths = %d/%d", len(curp), len(orig))
	}
	// At saturation (last point) CURP ≫ original.
	if curp[len(curp)-1] < 2*orig[len(orig)-1] {
		t.Fatalf("saturated CURP %.0f not ≫ original %.0f", curp[len(curp)-1], orig[len(orig)-1])
	}
}

func TestFig7Driver(t *testing.T) {
	withSmallFigures(t)
	var sb strings.Builder
	res := Fig7(&sb)
	if len(res) != 12 {
		t.Fatalf("fig7 results = %d", len(res))
	}
	if !strings.Contains(sb.String(), "YCSB-A") || !strings.Contains(sb.String(), "conflict%") {
		t.Error("fig7 output missing sections")
	}
}

func TestFig8Fig9Fig10Drivers(t *testing.T) {
	withSmallFigures(t)
	var sb strings.Builder
	res8 := Fig8(&sb)
	if len(res8) != 4 {
		t.Fatalf("fig8 results = %d", len(res8))
	}
	nd := res8["Original Redis (non-durable)"].Latency.Percentile(50)
	du := res8["Original Redis (durable)"].Latency.Percentile(50)
	if du <= nd {
		t.Fatal("durable median not above non-durable")
	}
	series9 := Fig9(&sb)
	if len(series9) != 4 || len(series9["CURP (1 witness)"]) != 6 {
		t.Fatalf("fig9 shape wrong: %d", len(series9))
	}
	Fig10(&sb)
	if !strings.Contains(sb.String(), "HMSET") {
		t.Error("fig10 output missing HMSET")
	}
}

func TestFig11Fig12Fig13Drivers(t *testing.T) {
	withSmallFigures(t)
	var sb strings.Builder
	res11 := Fig11(&sb)
	if len(res11) != 5 {
		t.Fatalf("fig11 slot counts = %d", len(res11))
	}
	// Associativity ordering at 4096 slots.
	row := res11[4096]
	if !(row[0] < row[1] && row[1] < row[2] && row[2] < row[3]) {
		t.Fatalf("fig11 ordering violated: %v", row)
	}
	res12 := Fig12(&sb)
	if len(res12) != 5 || len(res12["CURP (f=3)"]) != 7 {
		t.Fatalf("fig12 shape wrong")
	}
	Fig13(&sb)
	if !strings.Contains(sb.String(), "mean latency") {
		t.Error("fig13 output missing")
	}
}

func TestResourceReportDriver(t *testing.T) {
	var sb strings.Builder
	ResourceReport(&sb)
	out := sb.String()
	for _, want := range []string{"1.27M/s", "9 MB", "1.75x"} {
		if !strings.Contains(out, want) {
			t.Errorf("resource report missing paper reference %q:\n%s", want, out)
		}
	}
	// The measured amplification column should be ≈1.75.
	if !strings.Contains(out, "1.7") {
		t.Errorf("measured amplification not ≈1.75:\n%s", out)
	}
}
