package sim

import (
	"testing"
	"time"

	"curp/internal/stats"
)

func TestEventLoopOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(3*time.Microsecond, func() { order = append(order, 3) })
	s.After(1*time.Microsecond, func() { order = append(order, 1) })
	s.After(2*time.Microsecond, func() {
		order = append(order, 2)
		s.After(time.Microsecond, func() { order = append(order, 4) })
	})
	n := s.Run(0)
	if n != 4 {
		t.Fatalf("events = %d", n)
	}
	for i, v := range []int{1, 2, 3, 4} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 3*time.Microsecond {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestEventLoopFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Microsecond, func() { order = append(order, i) })
	}
	s.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Millisecond, func() { fired++ })
	s.After(time.Second, func() { fired++ })
	s.Run(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	a := r.Acquire(0, 10)
	b := r.Acquire(0, 10)
	c := r.Acquire(25, 10)
	if a != 10 || b != 20 || c != 35 {
		t.Fatalf("completions = %v %v %v", a, b, c)
	}
	if r.Busy != 30 {
		t.Fatalf("busy = %v", r.Busy)
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool(2)
	a := p.Acquire(0, 10)
	b := p.Acquire(0, 10)
	c := p.Acquire(0, 10)
	if a != 10 || b != 10 || c != 20 {
		t.Fatalf("completions = %v %v %v", a, b, c)
	}
}

func TestLogNormal(t *testing.T) {
	s := New(7)
	if s.LogNormal(0, 1) != 0 {
		t.Fatal("zero scale")
	}
	if s.LogNormal(100, 0) != 100 {
		t.Fatal("zero sigma should be deterministic")
	}
	var sum time.Duration
	for i := 0; i < 1000; i++ {
		v := s.LogNormal(time.Microsecond, 1)
		if v <= 0 {
			t.Fatal("lognormal must be positive")
		}
		sum += v
	}
	if sum <= 0 {
		t.Fatal("no samples")
	}
}

func TestKVDeterminism(t *testing.T) {
	p := KVParams{Mode: ModeCURP, F: 3, Clients: 2, Ops: 500, Seed: 42}
	a := RunKV(p)
	b := RunKV(p)
	if a.WriteLatency.Percentile(50) != b.WriteLatency.Percentile(50) ||
		a.Elapsed != b.Elapsed || a.FastPath != b.FastPath {
		t.Fatal("same seed must reproduce identical runs")
	}
}

func TestKVLatencyOrdering(t *testing.T) {
	// The core latency claim (Fig 5): unreplicated ≤ CURP ≪ original, and
	// CURP is within ~1µs of unreplicated while original is ≈2×.
	base := KVParams{Clients: 1, Ops: 4000, Seed: 1}
	un := RunKV(withMode(base, ModeUnreplicated, 0))
	curp := RunKV(withMode(base, ModeCURP, 3))
	orig := RunKV(withMode(base, ModeOriginal, 3))

	unP50 := time.Duration(un.WriteLatency.Percentile(50))
	curpP50 := time.Duration(curp.WriteLatency.Percentile(50))
	origP50 := time.Duration(orig.WriteLatency.Percentile(50))

	if !(unP50 <= curpP50 && curpP50 < origP50) {
		t.Fatalf("p50 ordering: un=%v curp=%v orig=%v", unP50, curpP50, origP50)
	}
	// CURP ≈ unreplicated (within 1µs, paper: 0.4µs).
	if d := curpP50 - unP50; d > time.Microsecond {
		t.Fatalf("CURP overhead vs unreplicated = %v, want ≤1µs", d)
	}
	// Original ≈ 2× CURP (paper: 13.8 vs 7.3).
	ratio := float64(origP50) / float64(curpP50)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("original/CURP p50 ratio = %.2f, want ≈2", ratio)
	}
	// Absolute calibration within 15% of the paper's medians.
	approx(t, "unreplicated p50", unP50, 6900*time.Nanosecond, 0.15)
	approx(t, "curp p50", curpP50, 7300*time.Nanosecond, 0.15)
	approx(t, "original p50", origP50, 13800*time.Nanosecond, 0.15)
	// All CURP ops on distinct random keys fast-path.
	if curp.FastPath < curp.Params.Ops*99/100 {
		t.Fatalf("fast path = %d / %d", curp.FastPath, curp.Params.Ops)
	}
}

func withMode(p KVParams, m Mode, f int) KVParams {
	p.Mode = m
	p.F = f
	return p
}

func approx(t *testing.T, what string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Fatalf("%s = %v, want %v ±%.0f%%", what, got, want, tol*100)
	}
}

func TestKVThroughputOrdering(t *testing.T) {
	// The Fig 6 claim: CURP ≈ 4× original; async slightly above CURP;
	// unreplicated above async.
	base := KVParams{Clients: 24, Ops: 20000, Seed: 2}
	un := RunKV(withMode(base, ModeUnreplicated, 0))
	as := RunKV(withMode(base, ModeAsync, 3))
	curp := RunKV(withMode(base, ModeCURP, 3))
	orig := RunKV(withMode(base, ModeOriginal, 3))

	if !(orig.ThroughputOpsPerSec < curp.ThroughputOpsPerSec &&
		curp.ThroughputOpsPerSec <= as.ThroughputOpsPerSec &&
		as.ThroughputOpsPerSec <= un.ThroughputOpsPerSec) {
		t.Fatalf("throughput ordering: orig=%.0f curp=%.0f async=%.0f un=%.0f",
			orig.ThroughputOpsPerSec, curp.ThroughputOpsPerSec,
			as.ThroughputOpsPerSec, un.ThroughputOpsPerSec)
	}
	ratio := curp.ThroughputOpsPerSec / orig.ThroughputOpsPerSec
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("CURP/original throughput = %.2f, want ≈4", ratio)
	}
	// CURP within ~15% of async (paper: 10%).
	if curp.ThroughputOpsPerSec < 0.8*as.ThroughputOpsPerSec {
		t.Fatalf("CURP %.0f ≪ async %.0f", curp.ThroughputOpsPerSec, as.ThroughputOpsPerSec)
	}
}

func TestKVNetworkAmplification(t *testing.T) {
	// §5.2: with f=3, CURP moves ≈1.75× the bytes of the original
	// protocol (7 copies vs 4).
	base := KVParams{Clients: 4, Ops: 5000, Seed: 3, SyncBatch: 50}
	curp := RunKV(withMode(base, ModeCURP, 3))
	orig := RunKV(withMode(base, ModeOriginal, 3))
	ratio := float64(curp.PayloadBytes) / float64(orig.PayloadBytes)
	if ratio < 1.6 || ratio > 1.9 {
		t.Fatalf("payload amplification = %.2f, want 1.75 (7 vs 4 copies)", ratio)
	}
	// Including headers and acks, the overall byte ratio is smaller but
	// still above 1.
	overall := float64(curp.NetworkBytes) / float64(orig.NetworkBytes)
	if overall < 1.1 || overall > 2.0 {
		t.Fatalf("total byte ratio = %.2f", overall)
	}
}

func TestKVZipfianConflicts(t *testing.T) {
	// Fig 7: under YCSB-A (Zipfian 0.99, 50% writes), ≈1% of writes
	// conflict; they finish in ≈2 RTTs via the master's synced reply, not
	// via client sync RPCs.
	p := KVParams{Mode: ModeCURP, F: 3, Clients: 1, Ops: 20000, Seed: 4,
		WriteFraction: 0.5, Zipfian: true, Keys: 1_000_000}
	r := RunKV(p)
	writes := r.FastPath + r.SyncedByMaster + r.SlowPath
	conflictFrac := float64(r.SyncedByMaster+r.SlowPath) / float64(writes)
	if conflictFrac <= 0 || conflictFrac > 0.08 {
		t.Fatalf("conflict fraction = %.4f, want small but nonzero", conflictFrac)
	}
	// Witness rejections are mostly co-detected by the master (§5.3), so
	// explicit client sync RPCs are rarer than master-synced replies.
	if r.SlowPath > r.SyncedByMaster {
		t.Fatalf("slow path %d > master-synced %d", r.SlowPath, r.SyncedByMaster)
	}
	// Reads happen and are fast.
	if r.ReadLatency.Count() == 0 {
		t.Fatal("no reads recorded")
	}
}

func TestKVBatchSweepShape(t *testing.T) {
	// Fig 12 / §C.1: throughput rises with the minimum batch size, and —
	// crucially — the single-outstanding-sync discipline batches
	// naturally, so even at minimum batch 1 the effective batch is ≥10
	// ("syncs are naturally batched for around 15 writes even at 1
	// minimum batch size") and throughput stays well above the original
	// system's.
	base := KVParams{Mode: ModeCURP, F: 3, Clients: 24, Ops: 15000, Seed: 5}
	run := func(b int) *KVResult {
		p := base
		p.SyncBatch = b
		return RunKV(p)
	}
	r1, r30, r50 := run(1), run(30), run(50)
	if !(r1.ThroughputOpsPerSec*0.98 <= r30.ThroughputOpsPerSec &&
		r30.ThroughputOpsPerSec*0.98 <= r50.ThroughputOpsPerSec) {
		t.Fatalf("not monotone: b1=%.0f b30=%.0f b50=%.0f",
			r1.ThroughputOpsPerSec, r30.ThroughputOpsPerSec, r50.ThroughputOpsPerSec)
	}
	gain := r50.ThroughputOpsPerSec / r1.ThroughputOpsPerSec
	if gain < 1.05 || gain > 2.0 {
		t.Fatalf("batch 50 / batch 1 = %.2f, want modest (paper ≈1.3)", gain)
	}
	// Natural batching at minimum batch 1.
	if eff := float64(r1.SyncedOps) / float64(r1.Syncs); eff < 10 {
		t.Fatalf("effective batch at min 1 = %.1f, want ≥10 (natural batching)", eff)
	}
	// Even at batch 1, CURP beats the original system handily (Fig 12).
	orig := RunKV(withMode(KVParams{Clients: 24, Ops: 15000, Seed: 5}, ModeOriginal, 3))
	if r1.ThroughputOpsPerSec < 1.5*orig.ThroughputOpsPerSec {
		t.Fatalf("CURP@1 (%.0f) should beat original (%.0f)",
			r1.ThroughputOpsPerSec, orig.ThroughputOpsPerSec)
	}
}

func TestRedisDeterminism(t *testing.T) {
	p := RedisParams{Mode: RedisCURP, Witnesses: 1, Ops: 2000, Seed: 9}
	a, b := RunRedis(p), RunRedis(p)
	if a.Latency.Percentile(50) != b.Latency.Percentile(50) || a.Elapsed != b.Elapsed {
		t.Fatal("redis sim must be deterministic")
	}
}

func TestRedisLatencyShape(t *testing.T) {
	// Fig 8: CURP(1W) ≈ non-durable (+~12%); durable ≫ both; CURP(2W)
	// hurt at the tail, visible at p90.
	base := RedisParams{Clients: 1, Ops: 15000, Seed: 10}
	nd := RunRedis(withRedisMode(base, RedisNonDurable, 0))
	c1 := RunRedis(withRedisMode(base, RedisCURP, 1))
	c2 := RunRedis(withRedisMode(base, RedisCURP, 2))
	du := RunRedis(withRedisMode(base, RedisDurable, 0))

	ndP50 := nd.Latency.Percentile(50)
	c1P50 := c1.Latency.Percentile(50)
	duP50 := du.Latency.Percentile(50)
	if !(ndP50 < c1P50 && c1P50 < duP50) {
		t.Fatalf("p50 ordering: nd=%d c1=%d du=%d", ndP50, c1P50, duP50)
	}
	// CURP(1W) overhead ≈ 12% (allow 5–40%).
	over := float64(c1P50-ndP50) / float64(ndP50)
	if over < 0.02 || over > 0.4 {
		t.Fatalf("CURP 1W median overhead = %.2f, want ≈0.12", over)
	}
	// Durable ≥ 2.5× non-durable (fsync dominates).
	if float64(duP50) < 2.5*float64(ndP50) {
		t.Fatalf("durable p50 %d not ≫ non-durable %d", duP50, ndP50)
	}
	// Tail amplification with 2 witnesses: p90 gap grows faster than p50.
	c2Tail := c2.Latency.Percentile(90) - c1.Latency.Percentile(90)
	if c2Tail <= 0 {
		t.Fatalf("2-witness tail not worse: Δp90 = %d", c2Tail)
	}
	// Durable fsyncs every cycle; CURP fsyncs off the critical path.
	if du.Fsyncs == 0 {
		t.Fatal("durable mode did not fsync")
	}
}

func withRedisMode(p RedisParams, m RedisMode, w int) RedisParams {
	p.Mode = m
	p.Witnesses = w
	return p
}

func TestRedisThroughputShape(t *testing.T) {
	// Fig 9: with many clients, durable approaches non-durable (event-loop
	// fsync batching); CURP sits slightly below non-durable (~18%).
	base := RedisParams{Clients: 48, Ops: 30000, Seed: 11}
	nd := RunRedis(withRedisMode(base, RedisNonDurable, 0))
	cu := RunRedis(withRedisMode(base, RedisCURP, 1))
	du := RunRedis(withRedisMode(base, RedisDurable, 0))
	if cu.ThroughputOpsPerSec >= nd.ThroughputOpsPerSec {
		t.Fatalf("CURP (%.0f) should trail non-durable (%.0f)", cu.ThroughputOpsPerSec, nd.ThroughputOpsPerSec)
	}
	frac := cu.ThroughputOpsPerSec / nd.ThroughputOpsPerSec
	if frac < 0.6 || frac > 0.98 {
		t.Fatalf("CURP/non-durable = %.2f, want ≈0.82", frac)
	}
	// Durable within 40% of non-durable at high client counts (batching),
	// but its latency pays for it.
	if du.ThroughputOpsPerSec < 0.5*nd.ThroughputOpsPerSec {
		t.Fatalf("durable throughput %.0f too far below non-durable %.0f", du.ThroughputOpsPerSec, nd.ThroughputOpsPerSec)
	}
	// Durable's throughput parity is bought with latency (Fig 13): its
	// mean latency carries the per-cycle fsync on top of the queueing both
	// modes share.
	if du.Latency.Mean() < 1.2*nd.Latency.Mean() {
		t.Fatalf("durable batching should cost latency: %.0f vs %.0f", du.Latency.Mean(), nd.Latency.Mean())
	}
}

func TestWitnessServerCapacity(t *testing.T) {
	// §5.2: one witness thread sustains ≈1.3M records/s — far above one
	// master's ≈730k writes/s, so f witnesses never bottleneck a master.
	recordCost := 750 * time.Nanosecond
	perSec := float64(time.Second) / float64(recordCost)
	if perSec < 1_000_000 {
		t.Fatalf("witness capacity = %.0f records/s, want >1M", perSec)
	}
	// And in a saturated CURP run, witness utilization stays below the
	// dispatch thread's.
	r := RunKV(KVParams{Mode: ModeCURP, F: 3, Clients: 24, Ops: 20000, Seed: 12})
	if r.ThroughputOpsPerSec < 400_000 {
		t.Fatalf("saturated CURP throughput = %.0f", r.ThroughputOpsPerSec)
	}
	_ = stats.Micros // keep stats imported for helpers used elsewhere
}
