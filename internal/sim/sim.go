// Package sim is a deterministic discrete-event simulator of CURP
// clusters, standing in for the paper's hardware testbed (80-node
// InfiniBand RAMCloud cluster, 10GbE Redis cluster). The performance
// artifacts of the paper — Figures 5–13 and the §5.2 resource numbers —
// are functions of RTT counts, per-RPC CPU costs, fsync costs, and
// queueing at the master's dispatch thread, all of which are explicit
// parameters here. The simulator reuses the real protocol components
// (internal/witness and internal/core) for every commutativity decision,
// so conflict behaviour under skewed workloads (Figure 7) is produced by
// the actual CURP logic, not a model of it.
//
// Every run is deterministic given its seed.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"time"
)

// Time is simulated time since the run started.
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop. Not safe for concurrent use (event callbacks run
// sequentially on the caller's goroutine).
type Sim struct {
	now Time
	seq uint64
	pq  eventHeap
	rng *rand.Rand
}

// New creates a simulator with a deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue drains or simulated time exceeds
// until (0 = no limit). It returns the number of events processed.
func (s *Sim) Run(until Time) int {
	n := 0
	for len(s.pq) > 0 {
		e := heap.Pop(&s.pq).(*event)
		if until > 0 && e.at > until {
			s.now = until
			return n
		}
		s.now = e.at
		e.fn()
		n++
	}
	return n
}

// LogNormal samples a lognormal jitter with the given median scale and
// shape sigma (0 ⇒ returns scale exactly).
func (s *Sim) LogNormal(scale Time, sigma float64) Time {
	if sigma <= 0 || scale <= 0 {
		return scale
	}
	return Time(float64(scale) * math.Exp(sigma*s.rng.NormFloat64()))
}

// Resource is a serial resource (a single thread): requests are served
// FIFO in the order acquire is called.
type Resource struct {
	free Time
	// Busy accumulates total busy time, for utilization reporting.
	Busy Time
}

// Acquire reserves the resource for cost starting no earlier than now and
// returns the completion time.
func (r *Resource) Acquire(now Time, cost Time) Time {
	start := now
	if r.free > start {
		start = r.free
	}
	r.free = start + cost
	r.Busy += cost
	return r.free
}

// Pool is a set of identical serial resources (a worker-thread pool).
type Pool struct {
	free []Time
	Busy Time
}

// NewPool creates a pool of n workers.
func NewPool(n int) *Pool { return &Pool{free: make([]Time, n)} }

// Acquire reserves the earliest-available worker for cost and returns the
// completion time.
func (p *Pool) Acquire(now Time, cost Time) Time {
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start := now
	if p.free[best] > start {
		start = p.free[best]
	}
	p.free[best] = start + cost
	p.Busy += cost
	return p.free[best]
}
