package metrics

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentStress hammers one registry from many goroutines —
// registering (idempotently), incrementing, observing, and scraping
// concurrently — and verifies the final counts. Run under -race this is
// the proof obligation for the "stats reads never race the hot path"
// satellite: the exact access pattern servers and scrapers produce.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup

	// Writers: half increment a shared counter + histogram, half a labeled
	// per-worker series, re-registering by name every iteration.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := L("worker", string(rune('a'+id)))
			for i := 0; i < perG; i++ {
				r.Counter("stress_ops_total", "ops").Inc()
				r.Counter("stress_worker_ops_total", "per-worker ops", lbl).Inc()
				r.Histogram("stress_latency_seconds", "lat").Observe(int64(i) * 1000)
				r.Gauge("stress_inflight", "in flight").Add(1)
				r.Gauge("stress_inflight", "in flight").Add(-1)
			}
		}(w)
	}
	// Callback re-registrations racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n := uint64(i)
			r.CounterFunc("stress_cb_total", "cb", func() uint64 { return n })
			r.GaugeFunc("stress_cb_gauge", "cbg", func() float64 { return float64(n) })
		}
	}()
	// Scrapers racing everything.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("stress_ops_total", "ops").Value(); got != workers*perG {
		t.Errorf("shared counter = %d, want %d", got, workers*perG)
	}
	for w := 0; w < workers; w++ {
		lbl := L("worker", string(rune('a'+w)))
		if got := r.Counter("stress_worker_ops_total", "per-worker ops", lbl).Value(); got != perG {
			t.Errorf("worker %d counter = %d, want %d", w, got, perG)
		}
	}
	if got := r.Histogram("stress_latency_seconds", "lat").Snapshot().Count(); got != workers*perG {
		t.Errorf("histogram count = %d, want %d", got, workers*perG)
	}
	if got := r.Gauge("stress_inflight", "in flight").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

// TestHistogramSnapshotIsolation verifies a snapshot is a private copy:
// mutating it does not disturb subsequent snapshots, and recording after a
// snapshot does not mutate it retroactively.
func TestHistogramSnapshotIsolation(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	s1 := h.Snapshot()
	if s1.Count() != 1 {
		t.Fatalf("count = %d, want 1", s1.Count())
	}
	h.Observe(200)
	if s1.Count() != 1 {
		t.Error("snapshot mutated by later Observe")
	}
	s1.Record(999)
	if got := h.Snapshot().Count(); got != 2 {
		t.Errorf("histogram count = %d after snapshot mutation, want 2", got)
	}
}
