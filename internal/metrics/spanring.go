package metrics

import "sync"

// WireSpan is one node-local observation inside a distributed trace. Like
// the slow-op Span it carries hashes and verdicts, never payloads, so
// traces are safe to export. IDs are uint64 (JSON-exact in Go's encoder);
// curpctl renders them as %016x.
type WireSpan struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`
	Node    string `json:"node"`
	Role    string `json:"role"`  // client|master|witness|backup|coordinator
	Shard   int    `json:"shard"` // -1 when unknown
	Stage   string `json:"stage"` // client-flush, witness-record, apply, sync-wait, ...
	Op      string `json:"op,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	Start   int64  `json:"start_ns"` // unix nanos
	Dur     int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// spanRing is the bounded buffer every span lands in regardless of
// sampling: tail-based promotion needs the boring early spans of a trace
// that only turns interesting later (possibly on another node). Striped by
// span ID so concurrent recorders rarely share a lock; each write is one
// short critical section with zero allocation.
const ringStripes = 8

type spanRing struct {
	stripes [ringStripes]ringStripe
}

type ringStripe struct {
	mu   sync.Mutex
	cap  int
	buf  []WireSpan // allocated on first use
	next int
	n    int // valid entries (≤ len(buf))
}

func newSpanRing(capacity int) *spanRing {
	per := capacity / ringStripes
	if per < 1 {
		per = 1
	}
	r := &spanRing{}
	for i := range r.stripes {
		r.stripes[i].cap = per
	}
	return r
}

func (r *spanRing) add(s WireSpan) {
	st := &r.stripes[s.SpanID%ringStripes]
	st.mu.Lock()
	if st.buf == nil {
		// Lazily allocated: every server owns a collector, but only nodes
		// that actually receive traced requests pay for the buffer.
		st.buf = make([]WireSpan, st.cap)
	}
	st.buf[st.next] = s
	st.next = (st.next + 1) % len(st.buf)
	if st.n < len(st.buf) {
		st.n++
	}
	st.mu.Unlock()
}

// collect appends every buffered span of traceID to dst.
func (r *spanRing) collect(traceID uint64, dst []WireSpan) []WireSpan {
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for j := 0; j < st.n; j++ {
			if st.buf[j].TraceID == traceID {
				dst = append(dst, st.buf[j])
			}
		}
		st.mu.Unlock()
	}
	return dst
}
