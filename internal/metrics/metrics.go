// Package metrics is the cluster's sensor layer: lock-cheap counters and
// gauges, a concurrency-safe histogram built on internal/stats (striped
// shards merged at snapshot time — the canonical fix for stats.Histogram's
// "not safe for concurrent use" contract), a labeled registry, and a
// Prometheus text-exposition writer. Every curpd node serves a registry at
// GET /metrics; curpctl top and the CI scrape-smoke job read the same
// surface.
//
// Design constraints, in order:
//
//  1. Hot paths pay one uncontended atomic per event. Counters and gauges
//     are single atomics; histograms stripe samples over several
//     mutex-guarded stats.Histogram shards picked round-robin, so
//     recording never serializes behind a scrape.
//  2. Scrapes are allowed to be slow. Snapshot() merges the stripes into a
//     fresh stats.Histogram under the stripe locks; callback metrics may
//     take server locks.
//  3. No dependencies beyond the standard library and internal/stats.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 that can go up and down. The zero value is ready to
// use and safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of the value
// sources is set.
type series struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // keyed by canonical label signature
	order  []string           // registration order of signatures
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name+labels combination returns the already-registered instrument, so
// components can re-attach after a failover without double counting.
// The zero value is NOT ready; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	// constLabels are appended to every series at render time (node
	// identity when several same-role registries share one endpoint).
	constLabels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetConstLabels attaches labels to every series this registry renders.
// Aggregated endpoints (one process hosting several backups or witnesses)
// use it to keep same-named series distinguishable; per-node endpoints get
// a stable node identity for free. Render-time only: series identity
// inside the registry is unchanged, so instruments registered before or
// after the call behave identically.
func (r *Registry) SetConstLabels(labels ...Label) {
	sorted := sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.constLabels = sorted
}

// labelSignature renders labels canonically (sorted by name) for use as a
// map key.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// sortLabels returns a copy of labels sorted by name, for deterministic
// output and signatures.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup finds or creates the family and series slot for name+labels,
// enforcing one kind per family. It returns the series (existing or new)
// and whether it was just created.
func (r *Registry) lookup(name, help string, k kind, labels []Label) (*series, bool) {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != k {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, k, fam.kind))
	}
	labels = sortLabels(labels)
	sig := labelSignature(labels)
	if s, ok := fam.series[sig]; ok {
		return s, false
	}
	s := &series{labels: labels}
	fam.series[sig] = s
	fam.order = append(fam.order, sig)
	return s, true
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.lookup(name, help, kindCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %s registered with a callback; cannot return a Counter", name))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counts a component already maintains (witness.Stats,
// core.MasterStats). Re-registering the same name+labels replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.lookup(name, help, kindCounter, labels)
	s.counter, s.counterFn = nil, fn
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.lookup(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s registered with a callback; cannot return a Gauge", name))
	}
	return s.gauge
}

// GaugeFunc registers a gauge read from fn at scrape time. Re-registering
// the same name+labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.lookup(name, help, kindGauge, labels)
	s.gauge, s.gaugeFn = nil, fn
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use. Samples are nanoseconds internally; the exposition
// writer converts to seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.lookup(name, help, kindHistogram, labels)
	if fresh {
		s.hist = NewHistogram()
	}
	return s.hist
}

// SizeHistogram is Histogram for unitless samples (batch sizes, entry
// counts): values are exposed verbatim rather than converted from
// nanoseconds to seconds.
func (r *Registry) SizeHistogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.lookup(name, help, kindHistogram, labels)
	if fresh {
		s.hist = NewSizeHistogram()
	}
	return s.hist
}
