package metrics

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one RPC-level trace record: what the operation was, where it
// landed, and which CURP path settled it. KeyHash is the routing hash, not
// the key — spans must be safe to ship to a log aggregator without leaking
// payloads.
type Span struct {
	Op      string        // "update", "read", "update_batch", "txn_prepare", ...
	KeyHash uint64        // first key's routing hash (0 when not applicable)
	Shard   int           // -1 when the node doesn't know its shard index
	Verdict string        // "fast", "sync", "conflict-sync", "blocked", "error", ...
	Dur     time.Duration //
	Err     string        // non-empty on failure
}

// Tracer logs spans whose duration crosses a threshold: the structured
// slow-op log that makes tail-latency outliers attributable. A nil Tracer
// and a zero threshold are both fully disabled; the hot-path cost of a
// fast op is one atomic load.
type Tracer struct {
	threshold atomic.Int64 // ns; <=0 disables
	mu        sync.Mutex
	w         io.Writer
}

// NewTracer writes slow-op lines to w for spans at or above threshold.
func NewTracer(w io.Writer, threshold time.Duration) *Tracer {
	t := &Tracer{w: w}
	t.threshold.Store(int64(threshold))
	return t
}

// SetThreshold changes the slow-op threshold at runtime (0 disables).
func (t *Tracer) SetThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.threshold.Store(int64(d))
}

// Slow reports whether a span of duration d would be logged — callers use
// it to skip span assembly entirely on the fast path.
func (t *Tracer) Slow(d time.Duration) bool {
	if t == nil {
		return false
	}
	th := t.threshold.Load()
	return th > 0 && int64(d) >= th
}

// Trace logs the span if it crosses the threshold. One line per span:
//
//	slowop ts=2026-08-07T10:11:12.131Z op=update shard=1 key=9f3a... verdict=conflict-sync dur=12.7ms
func (t *Tracer) Trace(s Span) {
	if !t.Slow(s.Dur) {
		return
	}
	line := fmt.Sprintf("slowop ts=%s op=%s shard=%d key=%016x verdict=%s dur=%s",
		time.Now().UTC().Format("2006-01-02T15:04:05.000Z"), s.Op, s.Shard, s.KeyHash, s.Verdict, s.Dur)
	if s.Err != "" {
		line += fmt.Sprintf(" err=%q", s.Err)
	}
	t.mu.Lock()
	fmt.Fprintln(t.w, line)
	t.mu.Unlock()
}
