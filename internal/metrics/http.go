package metrics

import (
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the registries' combined
// Prometheus exposition. Multiple registries concatenate in argument
// order — used by embedded deployments that co-host several node roles in
// one process.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}

// DynamicHandler is Handler with the registry set re-fetched per request —
// for endpoints whose backing component can be replaced at runtime (a
// failed-over master's registry changes identity; the endpoint should not).
func DynamicHandler(fn func() []*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		Handler(fn()...).ServeHTTP(w, req)
	})
}

// Server is a running /metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
}

// Close shuts the endpoint down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Serve starts an HTTP server on addr exposing the registries at /metrics
// (and at / for curl convenience). It returns immediately; the server runs
// until Close. An addr that cannot be bound returns the listen error — the
// caller decides whether metrics are load-bearing.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	return serveHandler(addr, Handler(regs...))
}

// ServeDynamic is Serve with a per-request registry set (see
// DynamicHandler).
func ServeDynamic(addr string, fn func() []*Registry) (*Server, error) {
	return serveHandler(addr, DynamicHandler(fn))
}

func serveHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}
