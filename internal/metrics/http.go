package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registries' combined
// Prometheus exposition. Multiple registries concatenate in argument
// order — used by embedded deployments that co-host several node roles in
// one process.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}

// DynamicHandler is Handler with the registry set re-fetched per request —
// for endpoints whose backing component can be replaced at runtime (a
// failed-over master's registry changes identity; the endpoint should not).
func DynamicHandler(fn func() []*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		Handler(fn()...).ServeHTTP(w, req)
	})
}

// Server is a running /metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
}

// Close shuts the endpoint down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Serve starts an HTTP server on addr exposing the registries at /metrics
// (and at / for curl convenience). It returns immediately; the server runs
// until Close. An addr that cannot be bound returns the listen error — the
// caller decides whether metrics are load-bearing.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	return serveHandler(addr, Handler(regs...))
}

// ServeDynamic is Serve with a per-request registry set (see
// DynamicHandler).
func ServeDynamic(addr string, fn func() []*Registry) (*Server, error) {
	return serveHandler(addr, DynamicHandler(fn))
}

func serveHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NodeMux(h, nil, false), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// NodeMux builds the per-node observability mux: /metrics (and / for curl
// convenience), /trace when a collector is attached, and the net/http/pprof
// suite when profiling is on. Every node role serves the same shape, so
// operators learn one layout.
func NodeMux(metricsH http.Handler, coll *Collector, profiling bool) *http.ServeMux {
	var traceH http.Handler
	if coll != nil {
		traceH = coll.TraceHandler()
	}
	return NodeMuxHandler(metricsH, traceH, profiling)
}

// NodeMuxHandler is NodeMux with an arbitrary /trace handler — endpoints
// whose backing collector set is dynamic (a failover-tracking master
// endpoint, an embedded multi-role process) pass a MultiTraceHandler.
func NodeMuxHandler(metricsH, traceH http.Handler, profiling bool) *http.ServeMux {
	return NodeMuxExtras(metricsH, traceH, profiling, nil)
}

// NodeMuxExtras is NodeMuxHandler plus arbitrary extra endpoints — the
// hook the flight recorder uses to mount /events (every node) and /hotkeys
// (masters and dashboards) without this package importing internal/events.
// Nil handlers in extras are skipped, so call sites can pass a map built
// unconditionally.
func NodeMuxExtras(metricsH, traceH http.Handler, profiling bool, extras map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsH)
	mux.Handle("/", metricsH)
	if traceH != nil {
		mux.Handle("/trace", traceH)
	}
	for path, h := range extras {
		if h != nil {
			mux.Handle(path, h)
		}
	}
	if profiling {
		MountProfiling(mux)
	}
	return mux
}

// MountProfiling mounts the net/http/pprof suite on mux (the -pprof /
// Options.Profiling opt-in; never on by default since profile endpoints
// are a DoS surface).
func MountProfiling(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeNode starts the full per-node observability endpoint: metrics,
// /trace from coll (nil skips it), and pprof when profiling is set.
func ServeNode(addr string, metricsH http.Handler, coll *Collector, profiling bool) (*Server, error) {
	var traceH http.Handler
	if coll != nil {
		traceH = coll.TraceHandler()
	}
	return ServeNodeHandler(addr, metricsH, traceH, profiling)
}

// ServeNodeHandler is ServeNode with an arbitrary /trace handler (see
// NodeMuxHandler).
func ServeNodeHandler(addr string, metricsH, traceH http.Handler, profiling bool) (*Server, error) {
	return ServeNodeExtras(addr, metricsH, traceH, profiling, nil)
}

// ServeNodeExtras is ServeNodeHandler plus extra endpoints (see
// NodeMuxExtras) — how curpd mounts /events and /hotkeys on every node's
// observability port.
func ServeNodeExtras(addr string, metricsH, traceH http.Handler, profiling bool, extras map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NodeMuxExtras(metricsH, traceH, profiling, extras), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}
