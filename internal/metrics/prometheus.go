package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// latencyBuckets is the `le` ladder (in seconds) used for histograms that
// record nanoseconds: 50µs to 10s, roughly logarithmic, bracketing both
// the in-memory fast path and WAN-scale tails.
var latencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// sizeBuckets is the ladder for unitless histograms (batch sizes).
var sizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderLabels renders a sorted label set as {a="x",b="y"}, or "" when
// empty. extra, when non-nil, is appended last (used for le).
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra.Name, escapeLabel(extra.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// series by label signature, so output is deterministic. Callback metrics
// are evaluated inline; they may take component locks, so scrapes are not
// wait-free — hot paths are.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the family/series structure — including each series' value
	// source, which CounterFunc/GaugeFunc may swap — under the registry
	// lock, then evaluate and render outside it so a slow callback cannot
	// block registration.
	type renderFam struct {
		name, help string
		kind       kind
		series     []series
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	constLabels := r.constLabels
	fams := make([]renderFam, 0, len(names))
	for _, name := range names {
		fam := r.families[name]
		sigs := make([]string, len(fam.order))
		copy(sigs, fam.order)
		sort.Strings(sigs)
		rf := renderFam{name: fam.name, help: fam.help, kind: fam.kind}
		for _, sig := range sigs {
			s := *fam.series[sig]
			if len(constLabels) > 0 {
				s.labels = sortLabels(append(append([]Label(nil), constLabels...), s.labels...))
			}
			rf.series = append(rf.series, s)
		}
		fams = append(fams, rf)
	}
	r.mu.Unlock()

	for _, fam := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, escapeHelp(fam.help), fam.name, fam.kind); err != nil {
			return err
		}
		for i := range fam.series {
			if err := writeSeries(w, fam.name, fam.kind, &fam.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of a family.
func writeSeries(w io.Writer, name string, k kind, s *series) error {
	switch k {
	case kindCounter:
		v := uint64(0)
		if s.counterFn != nil {
			v = s.counterFn()
		} else if s.counter != nil {
			v = s.counter.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(s.labels, nil), v)
		return err
	case kindGauge:
		var text string
		if s.gaugeFn != nil {
			text = formatFloat(s.gaugeFn())
		} else if s.gauge != nil {
			text = strconv.FormatInt(s.gauge.Value(), 10)
		} else {
			text = "0"
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(s.labels, nil), text)
		return err
	default:
		return writeHistogram(w, name, s)
	}
}

// writeHistogram renders a histogram as cumulative le buckets plus _sum
// and _count. Bucket counts come from the merged snapshot's CDF: for each
// bound, the cumulative count of the last CDF point at or below it. The
// log-linear buckets quantize values within ≈1.6%, so a sample can land
// one exposition bucket low when it sits within quantization error of a
// bound — an accepted trade for O(1) lock-cheap recording.
func writeHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	n := snap.Count()
	cdf := snap.CDF()
	bounds := latencyBuckets
	if s.hist.scale == 1 {
		bounds = sizeBuckets
	}
	ci := 0
	var cum int64
	for _, bound := range bounds {
		// Sample values are in raw units (ns for latency); the bound is in
		// exposition units (seconds). Convert the bound back.
		rawBound := bound / s.hist.scale
		for ci < len(cdf) && float64(cdf[ci].Value) <= rawBound {
			cum = int64(math.Round(cdf[ci].Fraction * float64(n)))
			ci++
		}
		le := Label{Name: "le", Value: formatFloat(bound)}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, &le), cum); err != nil {
			return err
		}
	}
	le := Label{Name: "le", Value: "+Inf"}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, &le), n); err != nil {
		return err
	}
	sum := float64(snap.Sum()) * s.hist.scale
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, nil), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, nil), n)
	return err
}
