package metrics

import (
	"sync"
	"sync/atomic"
	"time"

	"curp/internal/stats"
)

// histStripes is the number of independently locked stats.Histogram shards
// per Histogram. Recording picks a stripe round-robin, so concurrent
// recorders rarely collide on a mutex and never collide with a scrape for
// long: Snapshot holds each stripe lock only for one Merge.
const histStripes = 8

// stripe is one padded shard; the padding keeps adjacent stripe locks off
// one cache line so striping actually buys independence.
type stripe struct {
	mu sync.Mutex
	h  stats.Histogram
	_  [64]byte
}

// Histogram is a concurrency-safe log-linear histogram: the canonical
// merge-on-snapshot wrapper the stats package's doc comment asks for
// ("merge per-goroutine histograms with Merge instead"). Samples are
// recorded into per-stripe stats.Histograms and merged into a fresh one at
// Snapshot time, so readers never race writers. Create with NewHistogram.
type Histogram struct {
	stripes [histStripes]stripe
	next    atomic.Uint64
	// scale multiplies sample values on exposition. Latency histograms
	// record nanoseconds and expose seconds (1e-9); size histograms expose
	// raw values (1).
	scale float64
}

// NewHistogram returns a histogram that records nanoseconds and exposes
// seconds — the Prometheus convention for latency.
func NewHistogram() *Histogram { return &Histogram{scale: 1e-9} }

// NewSizeHistogram returns a histogram whose samples are exposed verbatim
// (batch sizes, entry counts).
func NewSizeHistogram() *Histogram { return &Histogram{scale: 1} }

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	s := &h.stripes[h.next.Add(1)%histStripes]
	s.mu.Lock()
	s.h.Record(v)
	s.mu.Unlock()
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot merges the stripes into a freshly allocated stats.Histogram the
// caller owns exclusively.
func (h *Histogram) Snapshot() *stats.Histogram {
	out := &stats.Histogram{}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		out.Merge(&s.h)
		s.mu.Unlock()
	}
	return out
}

// Reset clears all stripes. Snapshots taken concurrently may observe a
// partial clear; Reset is for tests and bench harness reuse, not steady
// state.
func (h *Histogram) Reset() {
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		s.h.Reset()
		s.mu.Unlock()
	}
}
