package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestWritePrometheusGolden pins the full exposition format — HELP/TYPE
// lines, label escaping, counter/gauge typing, histogram bucket ladders —
// against a golden file, so accidental format drift fails loudly instead
// of silently breaking scrapers.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("curp_test_ops_total", "Operations processed.", L("path", "fast"))
	c.Add(41)
	c.Inc()
	r.Counter("curp_test_ops_total", "Operations processed.", L("path", "slow")).Add(7)
	// Re-registration returns the same instrument: this must not reset or
	// duplicate the series.
	r.Counter("curp_test_ops_total", "Operations processed.", L("path", "fast")).Inc()

	g := r.Gauge("curp_test_window_ops", "Unsynced window size.")
	g.Set(12)
	g.Add(-2)

	r.GaugeFunc("curp_test_fraction", "A float-valued callback gauge.",
		func() float64 { return 0.625 })
	r.CounterFunc("curp_test_cb_total", "A callback counter.",
		func() uint64 { return 99 })

	// Label values exercising every escape: backslash, quote, newline.
	r.Counter("curp_test_escaped_total", `Help with a \ backslash.`,
		L("weird", "a\\b\"c\nd")).Add(3)

	h := r.Histogram("curp_test_latency_seconds", "Op latency.", L("op", "update"))
	h.ObserveDuration(75 * time.Microsecond)  // ≤ 100µs bucket
	h.ObserveDuration(75 * time.Microsecond)  // same bucket: cumulativity
	h.ObserveDuration(300 * time.Microsecond) // ≤ 500µs bucket
	h.ObserveDuration(80 * time.Millisecond)  // ≤ 100ms bucket
	h.ObserveDuration(30 * time.Second)       // beyond the ladder: only +Inf

	sh := r.SizeHistogram("curp_test_batch_entries", "Sync batch sizes.")
	sh.Observe(1)
	sh.Observe(3)
	sh.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition differs from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketCumulativity checks the le buckets are monotone
// non-decreasing and end exactly at _count, independent of the golden
// file.
func TestHistogramBucketCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "x")
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * 37_000) // 0..37ms spread
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev, count int64 = -1, -1
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "x_seconds_bucket"):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not cumulative: %d after %d (%q)", v, prev, line)
			}
			prev = v
		case strings.HasPrefix(line, "x_seconds_count"):
			count, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if count != 1000 {
		t.Errorf("_count = %d, want 1000", count)
	}
	if prev != count {
		t.Errorf("+Inf bucket = %d, want _count = %d", prev, count)
	}
}

// TestTracerThreshold checks the slow-op tracer logs exactly the spans at
// or above its threshold, and that nil/zero tracers are no-ops.
func TestTracerThreshold(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 10*time.Millisecond)
	tr.Trace(Span{Op: "update", Dur: 5 * time.Millisecond, Verdict: "fast"})
	if buf.Len() != 0 {
		t.Errorf("fast span logged: %q", buf.String())
	}
	tr.Trace(Span{Op: "update", Shard: 2, KeyHash: 0xabc, Dur: 15 * time.Millisecond, Verdict: "conflict-sync", Err: "x"})
	line := buf.String()
	for _, want := range []string{"slowop ", "op=update", "shard=2", "key=0000000000000abc", "verdict=conflict-sync", `err="x"`} {
		if !strings.Contains(line, want) {
			t.Errorf("span line missing %q: %q", want, line)
		}
	}
	var nilTracer *Tracer
	if nilTracer.Slow(time.Hour) {
		t.Error("nil tracer claims slow")
	}
	nilTracer.SetThreshold(time.Second) // must not panic
	tr.SetThreshold(0)
	if tr.Slow(time.Hour) {
		t.Error("zero threshold must disable tracing")
	}
}
