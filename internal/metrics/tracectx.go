package metrics

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
)

// TraceContext is the compact per-request tracing state that rides RPC
// frames: which trace the request belongs to, which span caused it, and how
// it is sampled. The zero value means "not traced" and encodes to nothing
// at all — untraced frames stay byte-identical to the pre-tracing wire
// format, so mixed-version clusters interoperate.
type TraceContext struct {
	TraceID uint64 // non-zero for a live trace
	SpanID  uint64 // the caller's span: parent of any span the callee records
	Flags   uint8  // sampling bits, see TraceFlag*
}

// TraceFlagForce marks a trace as always promoted (100% sampling) — used by
// benchmarks and debugging sessions that want every trace retained, not
// just the interesting tail.
const TraceFlagForce = 1 << 0

// TraceContextWireSize is the encoded size of a TraceContext on an RPC
// frame: u64 trace ID, u64 parent span ID, u8 flags, little endian.
const TraceContextWireSize = 17

// Valid reports whether tc carries a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Forced reports whether the force-sample bit is set.
func (tc TraceContext) Forced() bool { return tc.Flags&TraceFlagForce != 0 }

// EncodeTo writes the 17-byte wire form into dst[:TraceContextWireSize].
func (tc TraceContext) EncodeTo(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], tc.TraceID)
	binary.LittleEndian.PutUint64(dst[8:], tc.SpanID)
	dst[16] = tc.Flags
}

// DecodeTraceContext parses the 17-byte wire form.
func DecodeTraceContext(b []byte) (TraceContext, error) {
	if len(b) < TraceContextWireSize {
		return TraceContext{}, fmt.Errorf("metrics: short trace context (%d bytes)", len(b))
	}
	return TraceContext{
		TraceID: binary.LittleEndian.Uint64(b[0:]),
		SpanID:  binary.LittleEndian.Uint64(b[8:]),
		Flags:   b[16],
	}, nil
}

// NewTraceID mints a random non-zero 64-bit ID. Span IDs come from the
// same generator; zero is reserved to mean "absent".
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc. The RPC client reads it back
// out to pick the traced frame encoding; servers install the decoded
// context before invoking handlers, so propagation is automatic wherever a
// ctx is threaded.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts a live trace context from ctx.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
