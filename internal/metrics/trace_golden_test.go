package metrics

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestTraceHandlerGolden pins the exact /trace JSON document — field
// names, ordering, and indentation — against a golden file. curpctl and
// the smoke scripts parse this format; an accidental schema change must
// show up as a diff here, not as a broken operator tool. Spans are
// injected through the internal record path with fixed IDs and
// timestamps so the document is reproducible. Regenerate with:
//
//	go test ./internal/metrics -run TraceHandlerGolden -update-golden
func TestTraceHandlerGolden(t *testing.T) {
	c := NewCollector("127.0.0.1:7001", "master", 0)
	c.SetShard(2)

	const (
		fastTrace = 0x1111
		slowTrace = 0x2222
	)
	base := int64(1700000000_000000000) // fixed unix nanos
	// A boring fast-path trace: lands in the ring, never promoted,
	// invisible in the dump.
	c.record(WireSpan{
		TraceID: fastTrace, SpanID: 0xa1, Node: "127.0.0.1:7001", Role: "master",
		Shard: 2, Stage: "apply", Op: "put", Verdict: "speculative",
		Start: base, Dur: 12_000,
	}, 0)
	// A conflict-synced trace: the apply span's verdict promotes it, and
	// promotion retroactively collects the earlier queue span from the
	// ring.
	c.record(WireSpan{
		TraceID: slowTrace, SpanID: 0xb1, Node: "127.0.0.1:7001", Role: "master",
		Shard: 2, Stage: "master-queue", Start: base + 1_000, Dur: 5_000,
	}, 0)
	c.record(WireSpan{
		TraceID: slowTrace, SpanID: 0xb2, Parent: 0xb0, Node: "127.0.0.1:7001", Role: "master",
		Shard: 2, Stage: "apply", Op: "put", Verdict: "conflict-sync",
		Start: base + 6_000, Dur: 40_000,
	}, 0)
	c.record(WireSpan{
		TraceID: slowTrace, SpanID: 0xb3, Parent: 0xb2, Node: "127.0.0.1:7001", Role: "master",
		Shard: 2, Stage: "sync-wait", Op: "put", Start: base + 8_000, Dur: 30_000,
		Err: "", Verdict: "",
	}, 0)

	srv := httptest.NewServer(c.TraceHandler())
	defer srv.Close()

	check := func(name, url string) {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		body := make([]byte, 0, 4096)
		buf := make([]byte, 1024)
		for {
			n, err := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		golden := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, body, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update-golden to regenerate)", err)
		}
		if string(body) != string(want) {
			t.Errorf("/trace JSON drifted from %s:\ngot:\n%s\nwant:\n%s\n(run with -update if intentional)",
				golden, body, want)
		}
	}
	check("trace_dump.json", srv.URL+"/trace")
	check("trace_lookup.json", srv.URL+"/trace?id=2222")
}
