package metrics

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo adds the conventional curp_build_info gauge (constant
// 1) to r, carrying the build's identity as labels: the module version, the
// VCS commit (when the binary was built from a checkout), and the Go
// toolchain. Every node registry registers it, so one scrape answers "what
// exactly is running on this node?" — the first question of any incident —
// and curpctl status prints it per shard.
func RegisterBuildInfo(r *Registry) {
	version, commit := buildIdentity()
	r.GaugeFunc("curp_build_info",
		"Build metadata of the running binary; the value is always 1.",
		func() float64 { return 1 },
		L("version", version), L("commit", commit), L("go", runtime.Version()))
}

// buildIdentity extracts the module version and VCS revision from the
// binary's embedded build info. Binaries built outside a module or VCS
// checkout (go test, vendored builds) report "devel" / "unknown".
func buildIdentity() (version, commit string) {
	version, commit = "devel", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		}
	}
	return version, commit
}
