package metrics

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is one node's end of the distributed tracer: every span is
// recorded into the bounded ring, but a trace is only *promoted* (retained
// for /trace and curpctl) when one of its spans is interesting — slow,
// errored, or carrying a verdict that evicted the op from the 1-RTT path.
// That tail-based rule keeps the default overhead near zero: the common
// fast-path trace costs a few ring writes and one map probe, then vanishes
// as the ring wraps.
//
// A nil *Collector is fully disabled; every method is a no-op.
type Collector struct {
	node      string
	role      string
	shard     atomic.Int64
	threshold atomic.Int64 // ns; spans at/above promote their trace. <=0: only errors/verdicts promote.
	ring      *spanRing

	mu       sync.Mutex
	promoted map[uint64]*promotedTrace
	order    []uint64 // promotion order, oldest first (eviction queue)
	maxKeep  int
}

type promotedTrace struct {
	spans []WireSpan
}

const (
	defaultRingSpans  = 4096
	defaultKeepTraces = 128
	maxSpansPerTrace  = 256
)

// NewCollector creates a collector for one node role. threshold is the
// trace-promotion latency bound (0 keeps only errored/evicted traces).
func NewCollector(node, role string, threshold time.Duration) *Collector {
	c := &Collector{
		node:     node,
		role:     role,
		ring:     newSpanRing(defaultRingSpans),
		promoted: make(map[uint64]*promotedTrace),
		maxKeep:  defaultKeepTraces,
	}
	c.shard.Store(-1)
	c.threshold.Store(int64(threshold))
	return c
}

// SetShard records the shard index stamped on spans (-1 = unknown).
func (c *Collector) SetShard(i int) {
	if c != nil {
		c.shard.Store(int64(i))
	}
}

// SetThreshold changes the promotion threshold at runtime.
func (c *Collector) SetThreshold(d time.Duration) {
	if c != nil {
		c.threshold.Store(int64(d))
	}
}

// InterestingVerdict reports whether verdict v promotes a trace on its own
// — exported for curpctl's waterfall, which highlights the evicting span.
func InterestingVerdict(v string) bool { return interestingVerdict(v) }

// interestingVerdict lists the verdicts that promote a trace on their own:
// every way an op leaves the 1-RTT path, plus outright failures.
func interestingVerdict(v string) bool {
	switch v {
	case "conflict-sync", "locked", "blocked", "moved", "redirect",
		"error", "stale-epoch", "wrong-master", "reject-conflict",
		"reject-full", "reject-wrong-master", "reject-recovery":
		return true
	}
	return false
}

// StartTrace mints a fresh trace with a root span at stage and returns a
// ctx carrying it — downstream RPCs made with that ctx join the trace.
// flags selects sampling (TraceFlagForce for 100%).
func (c *Collector) StartTrace(ctx context.Context, stage string, flags uint8) (context.Context, *SpanHandle) {
	if c == nil {
		return ctx, nil
	}
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewTraceID(), Flags: flags}
	h := c.handle(tc.TraceID, tc.SpanID, 0, tc.Flags, stage)
	return ContextWithTrace(ctx, tc), h
}

// StartSpan opens a child span under ctx's trace and returns a ctx
// re-parented to it. Without a live trace in ctx it returns ctx unchanged
// and a nil handle (all methods no-ops) — the fast-path cost of an
// untraced request is one context probe.
func (c *Collector) StartSpan(ctx context.Context, stage string) (context.Context, *SpanHandle) {
	if c == nil {
		return ctx, nil
	}
	tc, ok := TraceFromContext(ctx)
	if !ok {
		return ctx, nil
	}
	id := NewTraceID()
	h := c.handle(tc.TraceID, id, tc.SpanID, tc.Flags, stage)
	return ContextWithTrace(ctx, TraceContext{TraceID: tc.TraceID, SpanID: id, Flags: tc.Flags}), h
}

func (c *Collector) handle(traceID, spanID, parent uint64, flags uint8, stage string) *SpanHandle {
	return &SpanHandle{
		c:     c,
		start: time.Now(),
		flags: flags,
		s: WireSpan{
			TraceID: traceID,
			SpanID:  spanID,
			Parent:  parent,
			Node:    c.node,
			Role:    c.role,
			Shard:   int(c.shard.Load()),
			Stage:   stage,
		},
	}
}

// RecordSpan records an already-measured span as a child of ctx's current
// span — for stages timed inline that never re-parent downstream calls
// (apply, sync-wait, lock-wait attribution on servers).
func (c *Collector) RecordSpan(ctx context.Context, stage, op, verdict string, start time.Time, dur time.Duration, errText string) {
	if c == nil {
		return
	}
	tc, ok := TraceFromContext(ctx)
	if !ok {
		return
	}
	c.record(WireSpan{
		TraceID: tc.TraceID,
		SpanID:  NewTraceID(),
		Parent:  tc.SpanID,
		Node:    c.node,
		Role:    c.role,
		Shard:   int(c.shard.Load()),
		Stage:   stage,
		Op:      op,
		Verdict: verdict,
		Start:   start.UnixNano(),
		Dur:     int64(dur),
		Err:     errText,
	}, tc.Flags)
}

func (c *Collector) record(s WireSpan, flags uint8) {
	c.ring.add(s)
	th := c.threshold.Load()
	interesting := flags&TraceFlagForce != 0 ||
		(th > 0 && s.Dur >= th) ||
		s.Err != "" ||
		interestingVerdict(s.Verdict)
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.promoted[s.TraceID]
	if pt == nil {
		if !interesting {
			return
		}
		// Pull the trace's earlier spans out of the ring: tail-based
		// promotion retroactively keeps the boring prefix.
		pt = &promotedTrace{spans: c.ring.collect(s.TraceID, nil)}
		c.promoted[s.TraceID] = pt
		c.order = append(c.order, s.TraceID)
		for len(c.order) > c.maxKeep {
			delete(c.promoted, c.order[0])
			c.order = c.order[1:]
		}
		return
	}
	if len(pt.spans) < maxSpansPerTrace {
		pt.spans = append(pt.spans, s)
	}
}

// SpanHandle is an open span; End measures and records it. A nil handle is
// inert, so call sites never branch on sampling state.
type SpanHandle struct {
	c     *Collector
	start time.Time
	flags uint8
	s     WireSpan
}

// SetOp annotates the span with the operation name.
func (h *SpanHandle) SetOp(op string) {
	if h != nil {
		h.s.Op = op
	}
}

// SetVerdict annotates the span with the path verdict ("fast",
// "conflict-sync", "locked", ...). Interesting verdicts promote the trace.
func (h *SpanHandle) SetVerdict(v string) {
	if h != nil {
		h.s.Verdict = v
	}
}

// SetErr annotates the span with a failure; errors always promote.
func (h *SpanHandle) SetErr(err error) {
	if h != nil && err != nil {
		h.s.Err = err.Error()
	}
}

// End closes the span and records it.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.s.Start = h.start.UnixNano()
	h.s.Dur = int64(time.Since(h.start))
	h.c.record(h.s, h.flags)
}

// TraceDump is the /trace JSON document: one node's promoted traces.
type TraceDump struct {
	Node   string      `json:"node"`
	Role   string      `json:"role"`
	Shard  int         `json:"shard"`
	Traces []TraceJSON `json:"traces"`
}

// TraceJSON is one trace's spans, sorted by start time.
type TraceJSON struct {
	TraceID uint64     `json:"trace_id"`
	Spans   []WireSpan `json:"spans"`
}

// Dump snapshots the promoted traces, newest promotion first.
func (c *Collector) Dump() TraceDump {
	d := TraceDump{Node: c.node, Role: c.role, Shard: int(c.shard.Load()), Traces: []TraceJSON{}}
	c.mu.Lock()
	for i := len(c.order) - 1; i >= 0; i-- {
		id := c.order[i]
		pt := c.promoted[id]
		if pt == nil {
			continue
		}
		spans := append([]WireSpan(nil), pt.spans...)
		d.Traces = append(d.Traces, TraceJSON{TraceID: id, Spans: spans})
	}
	c.mu.Unlock()
	for i := range d.Traces {
		sortSpans(d.Traces[i].Spans)
	}
	return d
}

// Lookup returns every span of traceID this node still holds: the promoted
// record plus anything surviving in the ring (a node whose spans were all
// boring can still answer for a trace a peer promoted).
func (c *Collector) Lookup(traceID uint64) []WireSpan {
	if c == nil {
		return nil
	}
	var spans []WireSpan
	c.mu.Lock()
	if pt := c.promoted[traceID]; pt != nil {
		spans = append(spans, pt.spans...)
	}
	c.mu.Unlock()
	spans = c.ring.collect(traceID, spans)
	seen := make(map[uint64]bool, len(spans))
	out := spans[:0]
	for _, s := range spans {
		if !seen[s.SpanID] {
			seen[s.SpanID] = true
			out = append(out, s)
		}
	}
	sortSpans(out)
	return out
}

func sortSpans(spans []WireSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// TraceHandler serves GET /trace (all promoted traces) and
// GET /trace?id=<hex trace id> (one trace, promoted ∪ ring).
func (c *Collector) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if c == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			spans := c.Lookup(id)
			if spans == nil {
				spans = []WireSpan{}
			}
			writeJSON(w, TraceDump{Node: c.node, Role: c.role, Shard: int(c.shard.Load()),
				Traces: []TraceJSON{{TraceID: id, Spans: spans}}})
			return
		}
		writeJSON(w, c.Dump())
	})
}

// MultiTraceHandler serves /trace over several collectors — an embedded
// process co-hosting many node roles. The list form answers with a JSON
// array of per-node TraceDump documents; the ?id= form answers with every
// node's spans for that trace (same array shape, one entry per node that
// holds spans). fetch runs per request so failovers swap collectors
// transparently.
func MultiTraceHandler(fetch func() []*Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		colls := fetch()
		w.Header().Set("Content-Type", "application/json")
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			dumps := []TraceDump{}
			for _, c := range colls {
				if c == nil {
					continue
				}
				spans := c.Lookup(id)
				if len(spans) == 0 {
					continue
				}
				dumps = append(dumps, TraceDump{Node: c.node, Role: c.role, Shard: int(c.shard.Load()),
					Traces: []TraceJSON{{TraceID: id, Spans: spans}}})
			}
			writeJSON(w, dumps)
			return
		}
		dumps := []TraceDump{}
		for _, c := range colls {
			if c == nil {
				continue
			}
			dumps = append(dumps, c.Dump())
		}
		writeJSON(w, dumps)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b)
}

// ParseTraceID parses the canonical %016x form (plain decimal also
// accepted for convenience).
func ParseTraceID(s string) (uint64, error) {
	if id, err := strconv.ParseUint(s, 16, 64); err == nil {
		return id, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// FormatTraceID renders a trace ID in the canonical form used by curpctl
// and accepted by /trace?id=.
func FormatTraceID(id uint64) string {
	return strconv.FormatUint(id, 16)
}
