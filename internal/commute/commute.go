// Package commute defines the per-command commutativity classes that widen
// CURP's 1-RTT fast path beyond "different keys never conflict".
//
// The paper's conflict rule is key-granular: a witness rejects a record, and
// a master syncs before replying, whenever two pending operations touch the
// same key. That rule collapses exactly when traffic concentrates on hot
// keys — the workload a large deployment actually sends — even though many
// of the colliding operations commute semantically (two counter increments
// produce the same state and the same *observable* results in either order).
// Following the CRDT literature (Shapiro & Preguiça) and Bansal et al.'s
// derivation of precise commutativity conditions, each kv command carries a
// Class, and every conflict site (witness slots, the master's unsynced
// window, the batch engine) asks Commutes(a, b) instead of comparing key
// hashes alone.
//
// The class lattice is deliberately coarse: a class commutes only with
// itself, and the default ClassWrite commutes with nothing. That is exactly
// the set of pairs whose results are order-independent:
//
//   - Counter + Counter: addition commutes, and each increment's return
//     value is scrubbed of order-dependent fields on crash replay.
//   - SetAdd + SetAdd (and SetRemove + SetRemove): adding (removing) members
//     of a sorted set commutes; Add vs Remove does NOT commute here, which
//     forces a sync between them — the ordering that gives the pair its
//     observed-remove semantics without tombstones.
//   - Bucket + Bucket: token grants subtract, which commutes while the
//     bucket stays positive; a take that hits zero demotes itself to the
//     sync path (kv.Result.Demote), so denials are never speculative.
//
// Mixed-class traffic on one key, reads, multi-key commands, and
// transactions all stay on the paper's key-granular rule.
package commute

// Class is a kv command's commutativity class, carried on the wire next to
// the key hashes (witness records, update envelopes).
type Class uint8

const (
	// ClassWrite is the default: order-dependent, commutes with nothing on
	// the same key. Put, Delete, CondPut, Append, multi-key commands, and
	// transactions are all writes.
	ClassWrite Class = iota
	// ClassCounter marks counter deltas (Increment).
	ClassCounter
	// ClassSetAdd marks set-membership additions.
	ClassSetAdd
	// ClassSetRemove marks set-membership removals.
	ClassSetRemove
	// ClassBucket marks token-bucket takes (BucketTake).
	ClassBucket

	numClasses
)

// Commutes reports whether two operations of the given classes on the SAME
// key may execute speculatively in either order. Distinct keys never reach
// this predicate — key-hash inequality already commutes.
func Commutes(a, b Class) bool {
	return a == b && a != ClassWrite
}

// String returns the class's metric-label form.
func (c Class) String() string {
	switch c {
	case ClassWrite:
		return "write"
	case ClassCounter:
		return "counter"
	case ClassSetAdd:
		return "set-add"
	case ClassSetRemove:
		return "set-remove"
	case ClassBucket:
		return "bucket"
	default:
		return "unknown"
	}
}

// Classes lists every class in wire order, for pre-binding labeled metric
// series.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}
