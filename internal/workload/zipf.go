// Package workload provides the key/operation generators used to drive the
// CURP evaluation: uniform and Zipfian key choosers (including the YCSB
// scrambled variant used for the paper's YCSB-A/B experiments), fixed-width
// key formatting, and read/write operation mixes.
//
// All generators are deterministic given a seed, so every experiment in the
// benchmark harness is exactly reproducible.
package workload

import (
	"math"
	"math/rand"
)

// KeyChooser picks object indexes in [0, N) according to some distribution.
type KeyChooser interface {
	// Next returns the next key index.
	Next() uint64
	// N returns the size of the key space.
	N() uint64
}

// Uniform chooses keys uniformly at random from [0, n).
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform chooser over [0, n) seeded with seed.
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		panic("workload: uniform key space must be non-empty")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next uniformly chosen key index.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N returns the key space size.
func (u *Uniform) N() uint64 { return u.n }

// Zipfian generates key indexes following a Zipfian distribution with
// parameter theta, using the Gray et al. "Quickly generating billion-record
// synthetic databases" algorithm — the same generator YCSB uses. Rank 0 is
// the most popular item.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// DefaultZipfTheta is the skew used by the YCSB core workloads and by the
// paper's §5.3 hot-key experiments.
const DefaultZipfTheta = 0.99

// NewZipfian returns a Zipfian chooser over [0, n) with skew theta in (0,1).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		panic("workload: zipfian key space must be non-empty")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: zipfian theta must be in (0,1)")
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf-distributed key index (0 = hottest).
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the key space size.
func (z *Zipfian) N() uint64 { return z.n }

// ScrambledZipfian spreads a Zipfian rank distribution across the whole key
// space with a hash, so popular keys are not clustered at low indexes. This
// is YCSB's ScrambledZipfianGenerator, the actual distribution behind the
// YCSB-A/B workloads in the paper's Figure 7.
type ScrambledZipfian struct {
	z *Zipfian
}

// NewScrambledZipfian returns a scrambled Zipfian chooser over [0, n).
func NewScrambledZipfian(n uint64, theta float64, seed int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, theta, seed)}
}

// Next returns the next key index.
func (s *ScrambledZipfian) Next() uint64 {
	return fnvHash64(s.z.Next()) % s.z.n
}

// N returns the key space size.
func (s *ScrambledZipfian) N() uint64 { return s.z.n }

// fnvHash64 is the FNV-1a style mix YCSB uses to scramble ranks.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		octet := v & 0xff
		v >>= 8
		h ^= octet
		h *= prime
	}
	return h
}
