package workload

import (
	"math"
	"sort"
	"testing"
)

func TestUniformBounds(t *testing.T) {
	u := NewUniform(100, 1)
	if u.N() != 100 {
		t.Fatalf("N = %d", u.N())
	}
	for i := 0; i < 10000; i++ {
		if k := u.Next(); k >= 100 {
			t.Fatalf("uniform out of range: %d", k)
		}
	}
}

func TestUniformCoversSpace(t *testing.T) {
	u := NewUniform(10, 2)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform should cover all 10 keys, saw %d", len(seen))
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(1000, 42), NewUniform(1000, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestZipfianBounds(t *testing.T) {
	z := NewZipfian(1000, 0.99, 1)
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 100000; i++ {
		if k := z.Next(); k >= 1000 {
			t.Fatalf("zipfian out of range: %d", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// With theta=0.99 over 1000 keys, rank 0 should receive far more hits
	// than the uniform share; the hottest key's frequency ≈ 1/zeta(n).
	z := NewZipfian(1000, 0.99, 3)
	const draws = 200000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	p0 := float64(counts[0]) / draws
	expected := 1.0 / zeta(1000, 0.99) // ≈ 0.125
	if math.Abs(p0-expected)/expected > 0.10 {
		t.Fatalf("hottest key frequency %f, want ≈%f", p0, expected)
	}
	// Popularity must be (statistically) decreasing in rank: compare the
	// first decile to the last decile.
	head, tail := 0, 0
	for i := 0; i < 100; i++ {
		head += counts[i]
		tail += counts[900+i]
	}
	if head < tail*10 {
		t.Fatalf("zipfian not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfianPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipfian(0, 0.99, 1) },
		func() { NewZipfian(10, 0, 1) },
		func() { NewZipfian(10, 1, 1) },
		func() { NewUniform(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	s := NewScrambledZipfian(1_000_000, 0.99, 5)
	if s.N() != 1_000_000 {
		t.Fatalf("N = %d", s.N())
	}
	counts := map[uint64]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := s.Next()
		if k >= 1_000_000 {
			t.Fatalf("scrambled zipfian out of range: %d", k)
		}
		counts[k]++
	}
	// Find the two hottest keys: they should not be adjacent indexes
	// (scrambling spreads them) and the hottest should still be hot.
	type kc struct {
		k uint64
		c int
	}
	var all []kc
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	if all[0].c < draws/20 {
		t.Fatalf("hottest key only %d/%d draws; distribution not skewed", all[0].c, draws)
	}
	d := int64(all[0].k) - int64(all[1].k)
	if d < 0 {
		d = -d
	}
	if d <= 1 {
		t.Fatalf("two hottest keys adjacent (%d, %d); scrambling broken", all[0].k, all[1].k)
	}
}

func TestMixFractions(t *testing.T) {
	m := NewMix(NewUniform(100, 1), 0.5, 10, 2)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		op := m.Next()
		if op.Kind == OpWrite {
			writes++
			if len(op.Value) != 10 {
				t.Fatalf("value size = %d", len(op.Value))
			}
		} else if op.Value != nil {
			t.Fatal("reads must not carry values")
		}
	}
	frac := float64(writes) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("write fraction %f, want 0.5", frac)
	}
}

func TestMixAllReadsAllWrites(t *testing.T) {
	r := NewMix(NewUniform(10, 1), 0, 8, 3)
	w := NewMix(NewUniform(10, 1), 1, 8, 3)
	for i := 0; i < 1000; i++ {
		if r.Next().Kind != OpRead {
			t.Fatal("writeFrac=0 must produce only reads")
		}
		if w.Next().Kind != OpWrite {
			t.Fatal("writeFrac=1 must produce only writes")
		}
	}
}

func TestMixPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMix(NewUniform(10, 1), 1.5, 8, 1)
}

func TestYCSBMixes(t *testing.T) {
	a := NewYCSBA(100, 1)
	b := NewYCSBB(100, 1)
	const n = 50000
	aw, bw := 0, 0
	for i := 0; i < n; i++ {
		if a.Next().Kind == OpWrite {
			aw++
		}
		if b.Next().Kind == OpWrite {
			bw++
		}
	}
	if f := float64(aw) / n; math.Abs(f-0.5) > 0.02 {
		t.Fatalf("YCSB-A write fraction %f", f)
	}
	if f := float64(bw) / n; math.Abs(f-0.05) > 0.01 {
		t.Fatalf("YCSB-B write fraction %f", f)
	}
}

func TestKeyFormatting(t *testing.T) {
	k := Key(42, 30)
	if len(k) != 30 {
		t.Fatalf("key length %d, want 30", len(k))
	}
	if string(k[:3]) != "key" {
		t.Fatalf("key prefix %q", k[:3])
	}
	if string(Key(42, 30)) != string(k) {
		t.Fatal("Key must be deterministic")
	}
	if string(Key(1, 10)) == string(Key(2, 10)) {
		t.Fatal("distinct indexes must give distinct keys")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too-narrow width")
		}
	}()
	Key(123456, 5)
}

func TestValue(t *testing.T) {
	v := Value(7, 100)
	if len(v) != 100 {
		t.Fatalf("value length %d", len(v))
	}
	if string(v) != string(Value(7, 100)) {
		t.Fatal("Value must be deterministic")
	}
	for _, c := range v {
		if c < 'A' || c > 'Z' {
			t.Fatalf("value byte %q not printable uppercase", c)
		}
	}
}

func TestZeta(t *testing.T) {
	// zeta(3, 1-eps) ≈ 1 + 1/2 + 1/3 at theta→1; check exact at theta=0.5:
	want := 1 + 1/math.Sqrt(2) + 1/math.Sqrt(3)
	if got := zeta(3, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta(3,0.5) = %f, want %f", got, want)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1_000_000, 0.99, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkScrambledZipfianNext(b *testing.B) {
	z := NewScrambledZipfian(1_000_000, 0.99, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
