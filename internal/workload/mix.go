package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies generated operations.
type OpKind int

// Operation kinds produced by a Mix.
const (
	OpRead OpKind = iota
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Op is one generated operation: a kind and a key index. Write operations
// also carry a value payload.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value []byte
}

// Mix generates a stream of read/write operations over a key chooser, with
// a configurable write fraction — e.g. YCSB-A is 50% writes, YCSB-B is 5%.
type Mix struct {
	keys      KeyChooser
	writeFrac float64
	valueSize int
	rng       *rand.Rand
	value     []byte
}

// NewMix builds an operation mix. writeFrac is the fraction of operations
// that are writes, in [0,1]. valueSize is the payload size for writes.
func NewMix(keys KeyChooser, writeFrac float64, valueSize int, seed int64) *Mix {
	if writeFrac < 0 || writeFrac > 1 {
		panic("workload: writeFrac must be in [0,1]")
	}
	m := &Mix{
		keys:      keys,
		writeFrac: writeFrac,
		valueSize: valueSize,
		rng:       rand.New(rand.NewSource(seed)),
		value:     make([]byte, valueSize),
	}
	for i := range m.value {
		m.value[i] = byte('a' + i%26)
	}
	return m
}

// Next returns the next operation. The Value slice of write operations is
// shared across calls; copy it if it must outlive the next call.
func (m *Mix) Next() Op {
	op := Op{Key: m.keys.Next()}
	if m.rng.Float64() < m.writeFrac {
		op.Kind = OpWrite
		op.Value = m.value
	}
	return op
}

// Standard YCSB-style mixes used by the paper (§5.3): YCSB-A is a 50/50
// read/update mix and YCSB-B is a 95/5 read/update mix, both over a
// Zipfian(0.99) distribution on 1M objects.
const (
	YCSBAWriteFraction = 0.50
	YCSBBWriteFraction = 0.05
	YCSBObjectCount    = 1_000_000
)

// NewYCSBA returns the paper's YCSB-A operation mix.
func NewYCSBA(valueSize int, seed int64) *Mix {
	return NewMix(NewScrambledZipfian(YCSBObjectCount, DefaultZipfTheta, seed), YCSBAWriteFraction, valueSize, seed+1)
}

// NewYCSBB returns the paper's YCSB-B operation mix.
func NewYCSBB(valueSize int, seed int64) *Mix {
	return NewMix(NewScrambledZipfian(YCSBObjectCount, DefaultZipfTheta, seed), YCSBBWriteFraction, valueSize, seed+1)
}

// Key formats key index i as a fixed-width printable key of the given byte
// length, e.g. Key(42, 30) for the paper's 30-byte Redis keys. Panics if
// width is too small to hold the formatted index.
func Key(i uint64, width int) []byte {
	s := fmt.Sprintf("key%0*d", width-3, i)
	if len(s) != width {
		panic(fmt.Sprintf("workload: key %d does not fit width %d", i, width))
	}
	return []byte(s)
}

// Value returns a deterministic printable payload of the given size for key
// index i. Successive writes to the same key produce the same value, which
// makes duplicate-execution bugs in tests easy to detect by comparing
// version numbers instead of contents.
func Value(i uint64, size int) []byte {
	v := make([]byte, size)
	for j := range v {
		v[j] = byte('A' + (int(i)+j)%26)
	}
	return v
}
