package consensus

// Quorum arithmetic and the leader-election log-comparison rule, exported
// for reuse: internal/controlplane replicates the coordinator's
// configuration state over the same majority/up-to-date rules this
// package's §A.2 data-plane group uses, so the two consensus layers cannot
// drift apart on the safety-critical constants.

// QuorumSize returns the majority quorum of a group with the given member
// count: ⌊members/2⌋ + 1. For the canonical 2f+1 group this is f+1.
func QuorumSize(members int) int { return members/2 + 1 }

// SuperquorumSize returns the 1-RTT witness-acceptance quorum of a 2f+1
// group: f + ⌈f/2⌉ + 1 (§A.2).
func SuperquorumSize(f int) int { return f + (f+1)/2 + 1 }

// LogUpToDate implements Raft's election restriction: a candidate's log is
// at least as up-to-date as a voter's when its last entry has a higher
// term, or the same term and at least the voter's length. Electing only
// up-to-date candidates is what guarantees a committed entry survives
// every leadership change.
func LogUpToDate(candLastTerm uint64, candLen int, voterLastTerm uint64, voterLen int) bool {
	if candLastTerm != voterLastTerm {
		return candLastTerm > voterLastTerm
	}
	return candLen >= voterLen
}
