package consensus

import (
	"fmt"
	"testing"

	"curp/internal/kv"
	"curp/internal/rifl"
	"curp/internal/witness"
)

func rid(c, s uint64) rifl.RPCID {
	return rifl.RPCID{Client: rifl.ClientID(c), Seq: rifl.Seq(s)}
}

func put(key, val string) *kv.Command {
	return &kv.Command{Op: kv.OpPut, Key: []byte(key), Value: []byte(val)}
}

func TestQuorumArithmetic(t *testing.T) {
	// §A.2: superquorum = f + ⌈f/2⌉ + 1 out of 2f+1.
	for _, tc := range []struct{ f, super, maj int }{
		{1, 3, 2}, // 3 replicas: all 3 witnesses for 1 RTT
		{2, 4, 3}, // 5 replicas: 4 witnesses
		{3, 6, 4}, // 7 replicas: 6 witnesses
	} {
		g := NewGroup(tc.f, witness.Config{})
		if g.Superquorum() != tc.super {
			t.Errorf("f=%d superquorum = %d, want %d", tc.f, g.Superquorum(), tc.super)
		}
		if g.Majority() != tc.maj {
			t.Errorf("f=%d majority = %d, want %d", tc.f, g.Majority(), tc.maj)
		}
		if len(g.replicas) != 2*tc.f+1 {
			t.Errorf("f=%d replicas = %d", tc.f, len(g.replicas))
		}
	}
}

func TestFastPathWithAllWitnesses(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	res, err := g.Update(put("a", "1"), rid(1, 1))
	if err != nil || res.Version != 1 {
		t.Fatalf("update: %v %+v", err, res)
	}
	st := g.Stats()
	if st.FastPath != 1 || st.CommitPath != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Speculative: leader executed but nothing is committed yet.
	if g.Leader().Commit() != 0 {
		t.Fatal("fast path should not commit")
	}
}

func TestConflictCommitsBeforeReply(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Update(put("k", "1"), rid(1, 1))
	// Same key again: non-commutative → commit path.
	if _, err := g.Update(put("k", "2"), rid(1, 2)); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.CommitPath != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.Leader().Commit() != 2 {
		t.Fatalf("commit = %d", g.Leader().Commit())
	}
	// Followers applied committed entries to their state machines.
	for i := 1; i < 3; i++ {
		v, _, ok := g.Replica(i).SM().Get([]byte("k"))
		if !ok || string(v) != "2" {
			t.Fatalf("replica %d sm: %q %v", i, v, ok)
		}
	}
}

func TestSubSuperquorumFallsBackToCommit(t *testing.T) {
	// With one witness down, only 2f of 2f+1 accept < superquorum (f=1 ⇒
	// need 3): the client must wait for commit.
	g := NewGroup(1, witness.Config{})
	g.Replica(2).Down()
	if _, err := g.Update(put("a", "1"), rid(1, 1)); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.FastPath != 0 || st.CommitPath != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Majority (leader + 1 follower) suffices for commit.
	if g.Leader().Commit() != 1 {
		t.Fatalf("commit = %d", g.Leader().Commit())
	}
}

func TestCommitImpossibleWithoutMajority(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Replica(1).Down()
	g.Replica(2).Down()
	// Witness superquorum is impossible AND commit quorum is impossible.
	if _, err := g.Update(put("a", "1"), rid(1, 1)); err == nil {
		t.Fatal("update should fail without majority")
	}
}

func TestLeaderChangeRecoversFastPathWrites(t *testing.T) {
	// Writes completed via superquorum (never committed) must survive a
	// leadership change: the new leader replays them from witnesses.
	g := NewGroup(1, witness.Config{})
	for i := 1; i <= 5; i++ {
		if _, err := g.Update(put(fmt.Sprintf("key%d", i), fmt.Sprintf("v%d", i)), rid(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := g.Stats(); st.FastPath != 5 {
		t.Fatalf("stats = %+v", st)
	}
	// Old leader crashes before replicating anything.
	g.Replica(0).Down()
	if err := g.ChangeLeader(1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		res, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte(fmt.Sprintf("key%d", i))})
		if err != nil || !res.Found || string(res.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key%d after leader change: %v %+v", i, err, res)
		}
	}
	if g.Leader() != g.Replica(1) {
		t.Fatal("leadership did not move")
	}
}

func TestLeaderChangeExactlyOnce(t *testing.T) {
	// An increment that was BOTH committed and still in witnesses must not
	// be replayed twice after a leadership change.
	g := NewGroup(1, witness.Config{})
	if _, err := g.Update(&kv.Command{Op: kv.OpIncrement, Key: []byte("c"), Delta: 5}, rid(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Commit it explicitly (e.g. a conflicting op on the same key).
	if _, err := g.Update(&kv.Command{Op: kv.OpIncrement, Key: []byte("c"), Delta: 1}, rid(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Both increments are committed; witness records may still exist.
	if err := g.ChangeLeader(1); err != nil {
		t.Fatal(err)
	}
	res, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte("c")})
	if err != nil || string(res.Value) != "6" {
		t.Fatalf("counter = %+v (err %v), want 6", res, err)
	}
}

func TestStaleTermRecordRejected(t *testing.T) {
	// §A.2: records tagged with an old term are rejected, so clients of a
	// deposed leader cannot complete operations.
	g := NewGroup(1, witness.Config{})
	oldTerm := g.Leader().Term()
	if err := g.ChangeLeader(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res := g.Replica(i).RecordOnWitness(oldTerm, []uint64{1}, rid(9, 1), []byte("x"))
		if res == witness.Accepted {
			t.Fatalf("replica %d accepted a stale-term record", i)
		}
	}
	// Current-term records are accepted again.
	newTerm := g.Leader().Term()
	if res := g.Replica(1).RecordOnWitness(newTerm, []uint64{1}, rid(9, 2), []byte("x")); res != witness.Accepted {
		t.Fatalf("fresh record = %v", res)
	}
}

func TestReadBlocksOnUncommittedKey(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Update(put("k", "v"), rid(1, 1))
	if g.Leader().Commit() != 0 {
		t.Fatal("setup: write should be uncommitted")
	}
	res, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte("k")})
	if err != nil || string(res.Value) != "v" {
		t.Fatalf("read: %v %+v", err, res)
	}
	// The read forced a commit.
	if g.Leader().Commit() != 1 {
		t.Fatalf("commit = %d after read", g.Leader().Commit())
	}
}

func TestDuplicateClientRetry(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	id := rid(1, 1)
	cmd := &kv.Command{Op: kv.OpIncrement, Key: []byte("c"), Delta: 3}
	if _, err := g.Update(cmd, id); err != nil {
		t.Fatal(err)
	}
	// Retry with the same RIFL ID: saved result, no re-execution.
	res, err := g.Update(cmd, id)
	if err != nil || string(res.Value) != "3" {
		t.Fatalf("retry: %v %+v", err, res)
	}
	final, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte("c")})
	if err != nil || string(final.Value) != "3" {
		t.Fatalf("counter = %q, want 3", final.Value)
	}
}

func TestElectionNeedsMajority(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Replica(0).Down()
	g.Replica(2).Down()
	if err := g.ChangeLeader(1); err == nil {
		t.Fatal("election without majority should fail")
	}
	g.Replica(2).Up()
	if err := g.ChangeLeader(1); err != nil {
		t.Fatalf("election with majority: %v", err)
	}
}

func TestLeaderChangeWithLargerGroup(t *testing.T) {
	// f=2 (5 replicas, superquorum 4): down one replica → 4 acceptances
	// still make the fast path; then recover via leadership change with
	// two replicas down.
	g := NewGroup(2, witness.Config{})
	g.Replica(4).Down()
	for i := 1; i <= 4; i++ {
		if _, err := g.Update(put(fmt.Sprintf("k%d", i), "v"), rid(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := g.Stats(); st.FastPath != 4 {
		t.Fatalf("stats = %+v", st)
	}
	g.Replica(0).Down() // leader crashes too: 3 of 5 alive = majority
	if err := g.ChangeLeader(2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		res, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte(fmt.Sprintf("k%d", i))})
		if err != nil || !res.Found {
			t.Fatalf("k%d lost after leader change: %v %+v", i, err, res)
		}
	}
}

func TestUpdateOnDownLeaderFails(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Replica(0).Down()
	if _, err := g.Update(put("a", "1"), rid(1, 1)); err == nil {
		t.Fatal("update on downed leader should fail")
	}
}

func TestExecutionErrorRollsBack(t *testing.T) {
	g := NewGroup(1, witness.Config{})
	g.Update(put("s", "abc"), rid(1, 1))
	if _, err := g.Update(&kv.Command{Op: kv.OpIncrement, Key: []byte("s"), Delta: 1}, rid(1, 2)); err == nil {
		t.Fatal("increment of string should fail")
	}
	// The failed entry must not linger in the log.
	leader := g.Leader()
	leader.mu.Lock()
	n := len(leader.log)
	leader.mu.Unlock()
	if n != 1 {
		t.Fatalf("log length = %d, want 1", n)
	}
}

func TestOperationContinuesAfterLeaderChange(t *testing.T) {
	// The group keeps serving 1-RTT updates under the new leader, and a
	// second leadership change still recovers everything.
	g := NewGroup(1, witness.Config{})
	for i := 1; i <= 3; i++ {
		if _, err := g.Update(put(fmt.Sprintf("a%d", i), "v"), rid(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.ChangeLeader(1); err != nil {
		t.Fatal(err)
	}
	// New writes (new term) fast-path against the new witnesses.
	before := g.Stats().FastPath
	for i := 4; i <= 6; i++ {
		if _, err := g.Update(put(fmt.Sprintf("a%d", i), "v"), rid(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().FastPath != before+3 {
		t.Fatalf("stats = %+v", g.Stats())
	}
	if err := g.ChangeLeader(2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		res, err := g.Read(&kv.Command{Op: kv.OpGet, Key: []byte(fmt.Sprintf("a%d", i))})
		if err != nil || !res.Found {
			t.Fatalf("a%d lost after second change: %v %+v", i, err, res)
		}
	}
}

func TestSuperquorumArithmeticProperty(t *testing.T) {
	// §A.2's guarantee needs: any f+1 quorum of witnesses intersects a
	// superquorum in at least ⌈f/2⌉+1 witnesses, and two non-commutative
	// requests cannot both reach that threshold within one quorum.
	for f := 1; f <= 6; f++ {
		g := NewGroup(f, witness.Config{Slots: 16, Ways: 4})
		n := 2*f + 1
		super := g.Superquorum()
		quorum := g.Majority()
		threshold := (f+1)/2 + 1
		// Worst-case intersection of a superquorum with any quorum.
		worst := super + quorum - n
		if worst < threshold {
			t.Errorf("f=%d: superquorum %d ∩ quorum %d ≥ %d < threshold %d",
				f, super, quorum, worst, threshold)
		}
		// Two conflicting requests: each witness accepts at most one, so
		// within any f+1 witnesses the two acceptance counts sum to ≤ f+1;
		// both reaching the threshold would need 2·threshold ≤ f+1, which
		// must be impossible.
		if 2*threshold <= quorum {
			t.Errorf("f=%d: two conflicting requests could both meet the replay threshold", f)
		}
	}
}

func BenchmarkConsensusCURPFastPath(b *testing.B) {
	g := NewGroup(1, witness.Config{})
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key%d", i)
		if _, err := g.Update(put(key, "v"), rid(1, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
		if i%50 == 49 {
			// Periodic commit keeps witnesses/uncommitted suffix bounded,
			// as the batched sync does in primary-backup mode.
			g.replicate(g.Leader(), i+1)
		}
	}
}
