// Package consensus implements the paper's §A.2 extension: CURP layered on
// a strong-leader consensus protocol (Raft/Viewstamped-Replication style).
//
// The substrate is a replicated log with 2f+1 replicas, a leader that
// appends and replicates entries, and a commit rule of "majority match".
// CURP adds:
//
//   - a witness component embedded in every replica, keyed by the current
//     term — record RPCs carry the client's term and are rejected by
//     witnesses of other terms (§A.2's zombie-leader defense);
//   - speculative execution at the leader: commutative requests execute
//     and answer before commit;
//   - the superquorum completion rule: a client finishes in 1 RTT only if
//     f+⌈f/2⌉+1 of the 2f+1 witnesses accepted its record, which
//     guarantees the request appears in ⌈f/2⌉+1 witnesses of ANY quorum
//     of f+1 — enough for the new leader to identify it during recovery;
//   - leadership-change recovery: the new leader collects records from
//     f+1 witnesses and replays exactly those appearing in at least
//     ⌈f/2⌉+1 of them, which §A.2 proves are mutually commutative and
//     include every completed-but-uncommitted request.
//
// Replicas communicate by direct method calls with failure-injection
// switches (Down), which keeps the protocol logic — the part the paper
// specifies — fully testable without duplicating the RPC substrate that
// internal/cluster already provides for primary-backup mode.
package consensus

import (
	"errors"
	"fmt"
	"sync"

	"curp/internal/commute"
	"curp/internal/core"
	"curp/internal/kv"
	"curp/internal/rifl"
	"curp/internal/witness"
)

// LogEntry is one slot of the replicated command log.
type LogEntry struct {
	Term      uint64
	ID        rifl.RPCID
	KeyHashes []uint64
	Payload   []byte // encoded kv.Command
}

// Replica is one member of the consensus group.
type Replica struct {
	mu sync.Mutex

	id      int
	term    uint64
	isDown  bool
	witness *witness.Witness

	log    []LogEntry
	commit int // entries log[:commit] are committed

	// State machine: rebuilt from the committed log on followers; the
	// leader's copy may run ahead (speculative execution).
	sm        *kv.Store
	smApplied int // log prefix applied to sm
	tracker   *rifl.Tracker

	// Leader-only commutativity bookkeeping over the uncommitted suffix.
	state *core.MasterState
}

func newReplica(id int, wcfg witness.Config) *Replica {
	return &Replica{
		id:      id,
		witness: witness.MustNew(uint64(0), wcfg), // keyed by term 0
		sm:      kv.NewStore(),
		tracker: rifl.NewTracker(),
		state:   core.NewMasterState(core.MasterConfig{SyncBatchSize: 50}),
	}
}

// Down simulates a crash or partition of the replica.
func (r *Replica) Down() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.isDown = true
}

// Up restores a downed replica.
func (r *Replica) Up() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.isDown = false
}

// RecordOnWitness is the client→witness record RPC: it carries the
// client's view of the current term; a witness embedded in a replica at a
// different term rejects (§A.2: "if the record RPC has an old term number,
// the witness rejects the request").
func (r *Replica) RecordOnWitness(term uint64, keyHashes []uint64, id rifl.RPCID, payload []byte) witness.RecordResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.isDown {
		return witness.RejectedRecovery // unreachable ≈ no acceptance
	}
	if term != r.term {
		return witness.RejectedWrongMaster
	}
	return r.witness.Record(r.witness.MasterID(), keyHashes, id, payload, commute.ClassWrite)
}

// appendEntries is the leader→follower replication call. It returns false
// when the follower is down or the terms/logs do not line up.
func (r *Replica) appendEntries(term uint64, prevIndex int, entries []LogEntry, leaderCommit int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.isDown || term < r.term {
		return false
	}
	r.term = term
	if prevIndex > len(r.log) {
		return false // gap
	}
	r.log = append(r.log[:prevIndex], entries...)
	if leaderCommit > len(r.log) {
		leaderCommit = len(r.log)
	}
	if leaderCommit > r.commit {
		r.commit = leaderCommit
		r.applyCommittedLocked()
	}
	return true
}

// applyCommittedLocked applies newly committed entries to the follower's
// state machine. Leaders skip it (their sm ran ahead speculatively).
func (r *Replica) applyCommittedLocked() {
	for r.smApplied < r.commit {
		en := &r.log[r.smApplied]
		cmd, err := kv.DecodeCommand(en.Payload)
		if err == nil {
			if outcome, _ := r.tracker.Begin(en.ID, 0); outcome == rifl.New {
				if res, _, err := r.sm.Apply(cmd, en.ID); err == nil {
					r.tracker.Record(en.ID, res.Encode())
				}
			}
		}
		r.smApplied++
	}
}

// Commit returns the replica's commit index (tests).
func (r *Replica) Commit() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commit
}

// Term returns the replica's current term.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// SM exposes the replica's state machine (tests).
func (r *Replica) SM() *kv.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sm
}

// resetWitnessLocked installs a fresh witness for a new term.
func (r *Replica) resetWitnessLocked(term uint64, wcfg witness.Config) {
	r.witness = witness.MustNew(0, wcfg)
	_ = term
}

// Group is a consensus group of 2f+1 replicas with CURP witnesses.
type Group struct {
	mu       sync.Mutex
	f        int
	replicas []*Replica
	leader   int
	wcfg     witness.Config

	stats GroupStats
}

// GroupStats counts completion paths.
type GroupStats struct {
	// FastPath: updates completed via superquorum witness acceptance
	// (1 RTT).
	FastPath uint64
	// CommitPath: updates that waited for majority commit (2 RTT).
	CommitPath uint64
}

// NewGroup creates a group masking f failures (2f+1 replicas); replica 0
// starts as leader at term 1.
func NewGroup(f int, wcfg witness.Config) *Group {
	if wcfg.Slots == 0 {
		wcfg = witness.DefaultConfig()
	}
	g := &Group{f: f, wcfg: wcfg}
	for i := 0; i < 2*f+1; i++ {
		r := newReplica(i, wcfg)
		r.term = 1
		g.replicas = append(g.replicas, r)
	}
	return g
}

// F returns the group's fault-tolerance level.
func (g *Group) F() int { return g.f }

// Superquorum returns the number of witness acceptances required for 1-RTT
// completion: f + ⌈f/2⌉ + 1 (§A.2).
func (g *Group) Superquorum() int { return g.f + (g.f+1)/2 + 1 }

// Majority returns the commit quorum: f+1.
func (g *Group) Majority() int { return g.f + 1 }

// Leader returns the current leader replica.
func (g *Group) Leader() *Replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.replicas[g.leader]
}

// Replica returns replica i.
func (g *Group) Replica(i int) *Replica { return g.replicas[i] }

// Stats returns completion-path counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// ErrNoLeader reports an unavailable leader.
var ErrNoLeader = errors.New("consensus: leader down")

// Update executes a client update through the full CURP-on-consensus
// protocol: record on all witnesses in parallel with proposing to the
// leader; complete in 1 RTT on superquorum acceptance + speculative
// execution, otherwise wait for majority commit.
func (g *Group) Update(cmd *kv.Command, id rifl.RPCID) (*kv.Result, error) {
	leader := g.Leader()
	term := leader.Term()

	// Record on every replica's witness (clients multicast; §A.2).
	accepts := 0
	payload := cmd.Encode()
	keyHashes := cmd.KeyHashes()
	for _, r := range g.replicas {
		if r.RecordOnWitness(term, keyHashes, id, payload) == witness.Accepted {
			accepts++
		}
	}

	res, index, committed, err := g.propose(leader, cmd, id, keyHashes, payload)
	if err != nil {
		return nil, err
	}
	if committed {
		g.countCommit()
		return res, nil
	}
	if accepts >= g.Superquorum() {
		g.countFast()
		return res, nil
	}
	// Slow path: ask the leader to commit through the majority.
	if err := g.replicate(leader, index); err != nil {
		return nil, err
	}
	g.countCommit()
	return res, nil
}

func (g *Group) countFast() {
	g.mu.Lock()
	g.stats.FastPath++
	g.mu.Unlock()
}

func (g *Group) countCommit() {
	g.mu.Lock()
	g.stats.CommitPath++
	g.mu.Unlock()
}

// propose appends the command at the leader and executes it speculatively
// when commutative; non-commutative commands are committed before the
// result is released (committed=true).
func (g *Group) propose(leader *Replica, cmd *kv.Command, id rifl.RPCID, keyHashes []uint64, payload []byte) (*kv.Result, int, bool, error) {
	leader.mu.Lock()
	if leader.isDown {
		leader.mu.Unlock()
		return nil, 0, false, ErrNoLeader
	}
	if outcome, saved := leader.tracker.Begin(id, 0); outcome == rifl.Completed {
		leader.mu.Unlock()
		res, err := kv.DecodeResult(saved)
		return res, len(leader.log), true, err
	}
	conflict := leader.state.Conflicts(keyHashes, commute.ClassWrite)
	leader.log = append(leader.log, LogEntry{Term: leader.term, ID: id, KeyHashes: keyHashes, Payload: payload})
	index := len(leader.log)
	res, _, err := leader.sm.Apply(cmd, id)
	if err != nil {
		// Deterministic execution error: roll the entry back.
		leader.log = leader.log[:index-1]
		leader.mu.Unlock()
		return nil, 0, false, err
	}
	leader.smApplied = index
	leader.state.NoteMutation(keyHashes, uint64(index), commute.ClassWrite)
	leader.tracker.Record(id, res.Encode())
	leader.mu.Unlock()

	if conflict {
		if err := g.replicate(leader, index); err != nil {
			return nil, 0, false, err
		}
		return res, index, true, nil
	}
	return res, index, false, nil
}

// replicate pushes the leader's log to followers until index is committed
// on a majority.
func (g *Group) replicate(leader *Replica, index int) error {
	leader.mu.Lock()
	term := leader.term
	log := append([]LogEntry(nil), leader.log...)
	commit := leader.commit
	leader.mu.Unlock()

	matched := 1 // leader itself
	for _, r := range g.replicas {
		if r == leader {
			continue
		}
		if r.appendEntries(term, 0, log, commit) {
			matched++
		}
	}
	if matched < g.Majority() {
		return fmt.Errorf("consensus: only %d/%d replicas reachable", matched, g.Majority())
	}
	// Advance the leader's commit and propagate it.
	leader.mu.Lock()
	if index > leader.commit {
		leader.commit = index
	}
	if leader.commit > leader.smApplied {
		leader.applyCommittedLocked()
	}
	leader.state.NoteSync(uint64(leader.commit))
	commit = leader.commit
	leader.mu.Unlock()
	for _, r := range g.replicas {
		if r != leader {
			r.appendEntries(term, 0, log, commit)
		}
	}
	return nil
}

// Read serves a linearizable read at the leader: commutative reads answer
// immediately (the strong leader holds a lease by assumption); reads
// touching uncommitted keys commit first.
func (g *Group) Read(cmd *kv.Command) (*kv.Result, error) {
	leader := g.Leader()
	keyHashes := cmd.KeyHashes()
	leader.mu.Lock()
	if leader.isDown {
		leader.mu.Unlock()
		return nil, ErrNoLeader
	}
	conflict := leader.state.Conflicts(keyHashes, commute.ClassWrite)
	index := len(leader.log)
	leader.mu.Unlock()
	if conflict {
		if err := g.replicate(leader, index); err != nil {
			return nil, err
		}
	}
	leader.mu.Lock()
	defer leader.mu.Unlock()
	res, _, err := leader.sm.Apply(cmd, rifl.RPCID{})
	return res, err
}

// ChangeLeader performs a leadership change with CURP recovery (§A.2):
// the new leader adopts the longest log among a majority, collects witness
// records from f+1 reachable replicas, replays those appearing in at least
// ⌈f/2⌉+1 of them, commits everything, and installs fresh witnesses under
// the new term.
func (g *Group) ChangeLeader(newLeader int) error {
	g.mu.Lock()
	nl := g.replicas[newLeader]
	g.mu.Unlock()

	nl.mu.Lock()
	if nl.isDown {
		nl.mu.Unlock()
		return ErrNoLeader
	}
	newTerm := nl.term + 1
	nl.mu.Unlock()

	// Election data collection: longest committed log among a majority.
	// (Raft's election restriction; we gather explicitly.)
	votes := 0
	var bestLog []LogEntry
	bestCommit := 0
	for _, r := range g.replicas {
		r.mu.Lock()
		if !r.isDown {
			votes++
			if r.commit > bestCommit {
				bestCommit = r.commit
				bestLog = append([]LogEntry(nil), r.log[:r.commit]...)
			}
		}
		r.mu.Unlock()
	}
	if votes < g.Majority() {
		return fmt.Errorf("consensus: election needs %d votes, got %d", g.Majority(), votes)
	}

	// Witness collection from f+1 replicas (their CURRENT-term witnesses).
	counts := map[rifl.RPCID]int{}
	records := map[rifl.RPCID]witness.Record{}
	collected := 0
	for _, r := range g.replicas {
		r.mu.Lock()
		if r.isDown {
			r.mu.Unlock()
			continue
		}
		recs := r.witness.GetRecoveryData() // freezes old-term witness
		r.mu.Unlock()
		collected++
		for _, rec := range recs {
			counts[rec.ID]++
			records[rec.ID] = rec
		}
		if collected == g.Majority() {
			break
		}
	}
	if collected < g.Majority() {
		return fmt.Errorf("consensus: witness collection needs %d replicas, got %d", g.Majority(), collected)
	}

	// Rebuild the new leader from the committed log, discarding any
	// speculative state (§A.2: reload from a checkpoint without
	// speculative executions).
	nl.mu.Lock()
	nl.term = newTerm
	nl.log = append([]LogEntry(nil), bestLog...)
	nl.commit = bestCommit
	nl.sm = kv.NewStore()
	nl.tracker = rifl.NewTracker()
	nl.smApplied = 0
	nl.applyCommittedLocked()
	nl.state = core.NewMasterState(core.MasterConfig{SyncBatchSize: 50})
	nl.state.InitRestored(uint64(nl.commit), uint64(nl.commit))
	nl.resetWitnessLocked(newTerm, g.wcfg)

	// Replay witness records meeting the ⌈f/2⌉+1 threshold: guaranteed
	// mutually commutative and inclusive of all completed-uncommitted
	// requests (§A.2).
	threshold := (g.f+1)/2 + 1
	nl.tracker.SetRecoveryMode(true)
	for id, n := range counts {
		if n < threshold {
			continue
		}
		rec := records[id]
		if outcome, _ := nl.tracker.Begin(id, 0); outcome != rifl.New {
			continue
		}
		cmd, err := kv.DecodeCommand(rec.Request)
		if err != nil {
			continue
		}
		res, _, err := nl.sm.Apply(cmd, id)
		if err != nil {
			continue
		}
		nl.log = append(nl.log, LogEntry{Term: newTerm, ID: id, KeyHashes: rec.KeyHashes, Payload: rec.Request})
		nl.smApplied = len(nl.log)
		nl.tracker.Record(id, res.Encode())
	}
	nl.tracker.SetRecoveryMode(false)
	index := len(nl.log)
	nl.mu.Unlock()

	// Commit the replayed entries and bump terms/witnesses everywhere.
	if err := g.replicate(nl, index); err != nil {
		return err
	}
	for _, r := range g.replicas {
		if r == nl {
			continue
		}
		r.mu.Lock()
		if !r.isDown && r.term < newTerm {
			r.term = newTerm
		}
		r.resetWitnessLocked(newTerm, g.wcfg)
		r.mu.Unlock()
	}
	g.mu.Lock()
	g.leader = newLeader
	g.mu.Unlock()
	return nil
}
