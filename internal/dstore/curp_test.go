package dstore

import (
	"context"
	"curp/internal/commute"
	"fmt"
	"testing"
	"time"

	"curp/internal/core"
	"curp/internal/rifl"
	"curp/internal/witness"
)

// rig wires a CURP client to an Engine with f in-process witnesses, the
// functional equivalent of the paper's Redis + witness-server deployment.
type rig struct {
	engine    *Engine
	dev       *MemDevice
	witnesses []*witness.Witness
	client    *core.Client
}

func newRig(t *testing.T, f int, cfg core.MasterConfig) *rig {
	t.Helper()
	dev := &MemDevice{}
	r := &rig{dev: dev, engine: NewEngine(1, NewAOF(dev, FsyncOnDemand), cfg)}
	view := &core.View{MasterID: 1, WitnessListVersion: 1, Master: r.engine}
	for i := 0; i < f; i++ {
		w := witness.MustNew(1, witness.DefaultConfig())
		r.witnesses = append(r.witnesses, w)
		view.Witnesses = append(view.Witnesses, WitnessAdapter{w})
	}
	r.engine.AttachWitnesses(r.witnesses)
	r.client = core.NewClient(rifl.NewSession(1), core.StaticView{V: view}, core.DefaultClientConfig())
	return r
}

func (r *rig) do(t *testing.T, cmd *Command) *Result {
	t.Helper()
	var out []byte
	var err error
	if cmd.IsReadOnly() {
		out, err = r.client.Read(context.Background(), cmd.KeyHashes(), cmd.Encode())
	} else {
		out, err = r.client.Update(context.Background(), cmd.KeyHashes(), cmd.Encode(), commute.ClassWrite)
	}
	if err != nil {
		t.Fatalf("%v: %v", cmd.Op, err)
	}
	res, err := DecodeResult(out)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEngineFastPathSkipsFsync(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	r.do(t, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	if st := r.client.Stats(); st.FastPath != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Durability came from the witness, not the disk.
	if r.dev.SyncCount != 0 {
		t.Fatal("fast path must not fsync")
	}
	if r.witnesses[0].Len() != 1 {
		t.Fatal("witness missing record")
	}
}

func TestEngineConflictFsyncsBeforeReply(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	r.do(t, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v1")})
	r.do(t, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v2")})
	st := r.client.Stats()
	if st.SyncedByMaster != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r.dev.SyncCount == 0 {
		t.Fatal("conflict must fsync")
	}
	// Witness records are collected lazily and by exact ID: the
	// conflicting op's record may land while the fsync is in flight (the
	// async client records in parallel with the master RPC), in which case
	// a later pass picks it up. The engine is quiesced here — every op is
	// done and fsynced — so sweep whatever remains and require emptiness.
	for _, w := range r.witnesses {
		var keys []witness.GCKey
		for _, rec := range w.SnapshotRecords() {
			keys = append(keys, witness.GCKeys(rec.KeyHashes, rec.ID)...)
		}
		r.engine.gcWitnesses(keys)
	}
	if r.witnesses[0].Len() != 0 {
		t.Fatalf("witness len = %d after gc", r.witnesses[0].Len())
	}
}

func TestEngineReadBlocksUntilFsync(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	r.do(t, &Command{Op: OpIncr, Key: []byte("c"), Delta: 7})
	res := r.do(t, &Command{Op: OpGet, Key: []byte("c")})
	if string(res.Value) != "7" {
		t.Fatalf("read = %q", res.Value)
	}
	if r.engine.State().Stats().ReadBlocks != 1 {
		t.Fatal("read of un-fsynced key must block on sync")
	}
	if r.dev.SyncCount == 0 {
		t.Fatal("read did not force fsync")
	}
}

func TestEngineAllCommandsThroughCURP(t *testing.T) {
	r := newRig(t, 2, core.MasterConfig{SyncBatchSize: 50})
	r.do(t, &Command{Op: OpSet, Key: []byte("str"), Value: []byte("s")})
	r.do(t, &Command{Op: OpHMSet, Key: []byte("h"), Field: []byte("f"), Value: []byte("hv")})
	r.do(t, &Command{Op: OpIncr, Key: []byte("cnt"), Delta: 3})
	r.do(t, &Command{Op: OpRPush, Key: []byte("lst"), Value: []byte("x")})
	r.do(t, &Command{Op: OpSAdd, Key: []byte("set"), Value: []byte("m")})
	// Distinct keys: all five are 1-RTT.
	if st := r.client.Stats(); st.FastPath != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if got := r.do(t, &Command{Op: OpHGet, Key: []byte("h"), Field: []byte("f")}); string(got.Value) != "hv" {
		t.Fatalf("hget = %q", got.Value)
	}
	if got := r.do(t, &Command{Op: OpSMembers, Key: []byte("set")}); len(got.Values) != 1 {
		t.Fatalf("smembers = %q", got.Values)
	}
}

func TestEngineCrashRecoveryFromWitness(t *testing.T) {
	// The §5.4 claim: with CURP, the "Redis" is durable — a crash that
	// loses the un-fsynced AOF tail recovers completed writes from the
	// witness.
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 1000})
	for i := 0; i < 10; i++ {
		r.do(t, &Command{Op: OpSet, Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	if r.dev.SyncCount != 0 {
		t.Fatal("writes should be un-fsynced")
	}
	// Crash: only dev.DurableBytes() (empty) survives; recover with the
	// witness.
	newDev := &MemDevice{}
	recovered, err := Recover(1, r.dev.DurableBytes(), r.witnesses[0], NewAOF(newDev, FsyncOnDemand), core.MasterConfig{SyncBatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := recovered.Store().Apply(&Command{Op: OpGet, Key: []byte(fmt.Sprintf("k%d", i))})
		if err != nil || !res.Found || string(res.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after recovery: %v %+v", i, err, res)
		}
	}
	// The recovered engine fsynced its rebuilt log.
	if newDev.SyncCount == 0 {
		t.Fatal("recovery must fsync the rebuilt log")
	}
	// The witness is frozen: stale clients cannot complete writes on it.
	if res := r.witnesses[0].Record(1, []uint64{1}, rifl.RPCID{Client: 9, Seq: 1}, []byte("late"), commute.ClassWrite); res != witness.RejectedRecovery {
		t.Fatalf("stale record = %v", res)
	}
}

func TestEngineRecoveryIsExactlyOnce(t *testing.T) {
	// Some commands fsynced, some only witnessed; recovery must apply each
	// exactly once. INCR catches both duplicates and losses.
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 1000})
	r.do(t, &Command{Op: OpIncr, Key: []byte("c"), Delta: 1}) // → 1
	// Force an fsync via an explicit engine sync (covers the increment).
	if err := r.engine.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.do(t, &Command{Op: OpIncr, Key: []byte("c"), Delta: 10}) // → 11, un-fsynced
	// (the second increment conflicts? c was synced, so no conflict)
	recovered, err := Recover(1, r.dev.DurableBytes(), r.witnesses[0], NewAOF(&MemDevice{}, FsyncOnDemand), core.MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := recovered.Store().Apply(&Command{Op: OpGet, Key: []byte("c")})
	if string(res.Value) != "11" {
		t.Fatalf("counter = %q, want 11 (exactly-once recovery)", res.Value)
	}
}

func TestEngineBatchSyncKeepsWitnessesBounded(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 5})
	for i := 0; i < 25; i++ {
		r.do(t, &Command{Op: OpSet, Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")})
	}
	deadline := time.Now().Add(time.Second)
	for r.witnesses[0].Len() > 5 {
		if time.Now().After(deadline) {
			t.Fatalf("witness len = %d; gc not keeping up", r.witnesses[0].Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineDuplicateUpdateReturnsSavedResult(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	id := rifl.RPCID{Client: 7, Seq: 1}
	req := &core.Request{
		ID:                 id,
		WitnessListVersion: 1,
		KeyHashes:          (&Command{Op: OpIncr, Key: []byte("c"), Delta: 5}).KeyHashes(),
		Payload:            (&Command{Op: OpIncr, Key: []byte("c"), Delta: 5}).Encode(),
	}
	rep1, err := r.engine.Update(context.Background(), req)
	if err != nil || rep1.Status != core.StatusOK {
		t.Fatalf("first: %v %+v", err, rep1)
	}
	rep2, err := r.engine.Update(context.Background(), req)
	if err != nil || rep2.Status != core.StatusOK || !rep2.Synced {
		t.Fatalf("duplicate: %v %+v", err, rep2)
	}
	res, _ := DecodeResult(rep2.Payload)
	if string(res.Value) != "5" {
		t.Fatalf("duplicate result = %q (re-execution?)", res.Value)
	}
	// State: counter is 5, not 10.
	got, _ := r.engine.Store().Apply(&Command{Op: OpGet, Key: []byte("c")})
	if string(got.Value) != "5" {
		t.Fatalf("counter = %q", got.Value)
	}
}

func TestEngineStaleWitnessListRejected(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	req := &core.Request{
		ID:                 rifl.RPCID{Client: 1, Seq: 99},
		WitnessListVersion: 0, // engine is at version 1
		KeyHashes:          []uint64{1},
		Payload:            (&Command{Op: OpSet, Key: []byte("k")}).Encode(),
	}
	rep, err := r.engine.Update(context.Background(), req)
	if err != nil || rep.Status != core.StatusStaleWitnessList {
		t.Fatalf("reply = %v %+v", err, rep)
	}
}

func TestEngineWrongTypeErrorPropagates(t *testing.T) {
	r := newRig(t, 1, core.MasterConfig{SyncBatchSize: 50})
	r.do(t, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	cmd := &Command{Op: OpLPush, Key: []byte("k"), Value: []byte("x")}
	_, err := r.client.Update(context.Background(), cmd.KeyHashes(), cmd.Encode(), commute.ClassWrite)
	if err == nil {
		t.Fatal("wrong-type error should propagate")
	}
}

func BenchmarkEngineSet(b *testing.B) {
	dev := &MemDevice{}
	e := NewEngine(1, NewAOF(dev, FsyncOnDemand), core.MasterConfig{SyncBatchSize: 50})
	w := witness.MustNew(1, witness.DefaultConfig())
	e.AttachWitnesses([]*witness.Witness{w})
	view := &core.View{MasterID: 1, WitnessListVersion: 1, Master: e, Witnesses: []core.WitnessAPI{WitnessAdapter{w}}}
	cl := core.NewClient(rifl.NewSession(1), core.StaticView{V: view}, core.DefaultClientConfig())
	val := make([]byte, 100)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := &Command{Op: OpSet, Key: []byte(fmt.Sprintf("key%d", i%2048)), Value: val}
		if _, err := cl.Update(ctx, cmd.KeyHashes(), cmd.Encode(), commute.ClassWrite); err != nil {
			b.Fatal(err)
		}
	}
}
