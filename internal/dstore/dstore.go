// Package dstore is the Redis-like storage substrate of the paper's §5.4
// evaluation: an in-memory data-structure store (strings, hashes, counters,
// lists, sets) whose only durability mechanism is an append-only file (AOF)
// of commands, optionally fsynced before replying.
//
// The paper's experiment turns this "fast cache with a 10–100× penalty for
// durability" into a durable, consistent store at cache speed by recording
// commands in CURP witnesses and moving the AOF fsync off the critical
// path. This package supplies the store, the command set (SET/GET/HMSET/
// HGET/INCR/LPUSH/RPUSH/LRANGE/SADD/SMEMBERS/DEL), the AOF with pluggable
// fsync policy, and a CURP-wrapped server; internal/sim models the
// performance figures.
package dstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"curp/internal/rpc"
	"curp/internal/witness"
)

// Op enumerates the store's commands.
type Op uint8

// Supported commands. GET, HGET, LRANGE, and SMEMBERS are read-only.
const (
	OpSet Op = iota
	OpGet
	OpDel
	OpHMSet
	OpHGet
	OpIncr
	OpLPush
	OpRPush
	OpLRange
	OpSAdd
	OpSMembers
)

// String names the command like the Redis wire protocol does.
func (o Op) String() string {
	switch o {
	case OpSet:
		return "SET"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpHMSet:
		return "HMSET"
	case OpHGet:
		return "HGET"
	case OpIncr:
		return "INCR"
	case OpLPush:
		return "LPUSH"
	case OpRPush:
		return "RPUSH"
	case OpLRange:
		return "LRANGE"
	case OpSAdd:
		return "SADD"
	case OpSMembers:
		return "SMEMBERS"
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Command is one client command. Every data structure lives under a single
// key, so two commands commute exactly when their keys differ (§5.5: "since
// each data structure is assigned to a specific key, CURP can execute many
// update operations on different keys without blocking on syncs").
type Command struct {
	Op  Op
	Key []byte
	// Field is the hash field for HMSET/HGET.
	Field []byte
	// Value is the payload for SET/HMSET/LPUSH/RPUSH/SADD.
	Value []byte
	// Delta is the INCR amount.
	Delta int64
	// Start/Stop bound LRANGE (inclusive, negative = from tail).
	Start, Stop int64
}

// IsReadOnly reports whether the command cannot modify state.
func (c *Command) IsReadOnly() bool {
	switch c.Op {
	case OpGet, OpHGet, OpLRange, OpSMembers:
		return true
	}
	return false
}

// KeyHashes returns the commutativity footprint: the single key's hash.
func (c *Command) KeyHashes() []uint64 {
	return []uint64{witness.KeyHash(c.Key)}
}

// Marshal appends the command's wire form to e.
func (c *Command) Marshal(e *rpc.Encoder) {
	e.U8(uint8(c.Op))
	e.Bytes32(c.Key)
	e.Bytes32(c.Field)
	e.Bytes32(c.Value)
	e.I64(c.Delta)
	e.I64(c.Start)
	e.I64(c.Stop)
}

// Encode returns the command's wire form.
func (c *Command) Encode() []byte {
	e := rpc.NewEncoder(32 + len(c.Key) + len(c.Value))
	c.Marshal(e)
	return e.Bytes()
}

// DecodeCommand parses a command.
func DecodeCommand(b []byte) (*Command, error) {
	d := rpc.NewDecoder(b)
	c := &Command{
		Op:    Op(d.U8()),
		Key:   d.BytesCopy32(),
		Field: d.BytesCopy32(),
		Value: d.BytesCopy32(),
		Delta: d.I64(),
		Start: d.I64(),
		Stop:  d.I64(),
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Result is a command's outcome.
type Result struct {
	// Found reports whether the key (or hash field) existed for reads.
	Found bool
	// Value holds GET/HGET results and the post-INCR counter value.
	Value []byte
	// Values holds LRANGE and SMEMBERS results.
	Values [][]byte
	// N is the new length for LPUSH/RPUSH, the number added for SADD, and
	// the number removed for DEL.
	N int64
}

// Marshal appends the result's wire form to e.
func (r *Result) Marshal(e *rpc.Encoder) {
	e.Bool(r.Found)
	e.Bytes32(r.Value)
	e.U32(uint32(len(r.Values)))
	for _, v := range r.Values {
		e.Bytes32(v)
	}
	e.I64(r.N)
}

// Encode returns the result's wire form.
func (r *Result) Encode() []byte {
	e := rpc.NewEncoder(16 + len(r.Value))
	r.Marshal(e)
	return e.Bytes()
}

// DecodeResult parses a result.
func DecodeResult(b []byte) (*Result, error) {
	d := rpc.NewDecoder(b)
	r := &Result{Found: d.Bool(), Value: d.BytesCopy32()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Values = append(r.Values, d.BytesCopy32())
	}
	r.N = d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// ErrWrongType reports a command against a key holding another type, the
// Redis WRONGTYPE error.
var ErrWrongType = errors.New("dstore: operation against a key holding the wrong kind of value")

// value is one keyed data structure.
type value struct {
	str  []byte
	hash map[string][]byte
	list [][]byte
	set  map[string]struct{}
	kind byte // 's' string, 'h' hash, 'l' list, 'S' set, 0 unset
}

// Store is the in-memory data-structure store. Safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string]*value
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]*value)}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

func (s *Store) val(key []byte, kind byte) (*value, error) {
	v := s.data[string(key)]
	if v == nil {
		v = &value{kind: kind}
		switch kind {
		case 'h':
			v.hash = make(map[string][]byte)
		case 'S':
			v.set = make(map[string]struct{})
		}
		s.data[string(key)] = v
		return v, nil
	}
	if v.kind != kind {
		return nil, ErrWrongType
	}
	return v, nil
}

// Apply executes cmd and returns its result.
func (s *Store) Apply(cmd *Command) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd.Op {
	case OpSet:
		v, err := s.val(cmd.Key, 's')
		if err != nil {
			return nil, err
		}
		v.str = append([]byte(nil), cmd.Value...)
		return &Result{Found: true}, nil

	case OpGet:
		v := s.data[string(cmd.Key)]
		if v == nil {
			return &Result{}, nil
		}
		if v.kind != 's' {
			return nil, ErrWrongType
		}
		return &Result{Found: true, Value: append([]byte(nil), v.str...)}, nil

	case OpDel:
		if _, ok := s.data[string(cmd.Key)]; ok {
			delete(s.data, string(cmd.Key))
			return &Result{Found: true, N: 1}, nil
		}
		return &Result{}, nil

	case OpHMSet:
		v, err := s.val(cmd.Key, 'h')
		if err != nil {
			return nil, err
		}
		v.hash[string(cmd.Field)] = append([]byte(nil), cmd.Value...)
		return &Result{Found: true}, nil

	case OpHGet:
		v := s.data[string(cmd.Key)]
		if v == nil {
			return &Result{}, nil
		}
		if v.kind != 'h' {
			return nil, ErrWrongType
		}
		f, ok := v.hash[string(cmd.Field)]
		if !ok {
			return &Result{}, nil
		}
		return &Result{Found: true, Value: append([]byte(nil), f...)}, nil

	case OpIncr:
		v, err := s.val(cmd.Key, 's')
		if err != nil {
			return nil, err
		}
		var cur int64
		if len(v.str) > 0 {
			cur, err = strconv.ParseInt(string(v.str), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dstore: value is not an integer")
			}
		}
		cur += cmd.Delta
		v.str = []byte(strconv.FormatInt(cur, 10))
		return &Result{Found: true, Value: append([]byte(nil), v.str...)}, nil

	case OpLPush, OpRPush:
		v, err := s.val(cmd.Key, 'l')
		if err != nil {
			return nil, err
		}
		item := append([]byte(nil), cmd.Value...)
		if cmd.Op == OpLPush {
			v.list = append([][]byte{item}, v.list...)
		} else {
			v.list = append(v.list, item)
		}
		return &Result{Found: true, N: int64(len(v.list))}, nil

	case OpLRange:
		v := s.data[string(cmd.Key)]
		if v == nil {
			return &Result{}, nil
		}
		if v.kind != 'l' {
			return nil, ErrWrongType
		}
		start, stop := rangeBounds(cmd.Start, cmd.Stop, int64(len(v.list)))
		res := &Result{Found: true}
		for i := start; i <= stop; i++ {
			res.Values = append(res.Values, append([]byte(nil), v.list[i]...))
		}
		return res, nil

	case OpSAdd:
		v, err := s.val(cmd.Key, 'S')
		if err != nil {
			return nil, err
		}
		if _, dup := v.set[string(cmd.Value)]; dup {
			return &Result{Found: true}, nil
		}
		v.set[string(cmd.Value)] = struct{}{}
		return &Result{Found: true, N: 1}, nil

	case OpSMembers:
		v := s.data[string(cmd.Key)]
		if v == nil {
			return &Result{}, nil
		}
		if v.kind != 'S' {
			return nil, ErrWrongType
		}
		res := &Result{Found: true}
		members := make([]string, 0, len(v.set))
		for m := range v.set {
			members = append(members, m)
		}
		sort.Strings(members) // deterministic order for replay equality
		for _, m := range members {
			res.Values = append(res.Values, []byte(m))
		}
		return res, nil

	default:
		return nil, fmt.Errorf("dstore: unknown op %v", cmd.Op)
	}
}

// rangeBounds resolves Redis-style LRANGE indexes (negative = from tail)
// into inclusive slice bounds; an empty range returns start > stop.
func rangeBounds(start, stop, n int64) (int64, int64) {
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || n == 0 {
		return 1, 0
	}
	return start, stop
}
