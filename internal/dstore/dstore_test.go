package dstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"curp/internal/rifl"
)

func apply(t *testing.T, s *Store, cmd *Command) *Result {
	t.Helper()
	res, err := s.Apply(cmd)
	if err != nil {
		t.Fatalf("%v: %v", cmd.Op, err)
	}
	return res
}

func TestSetGetDel(t *testing.T) {
	s := NewStore()
	apply(t, s, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	res := apply(t, s, &Command{Op: OpGet, Key: []byte("k")})
	if !res.Found || string(res.Value) != "v" {
		t.Fatalf("get = %+v", res)
	}
	res = apply(t, s, &Command{Op: OpDel, Key: []byte("k")})
	if !res.Found || res.N != 1 {
		t.Fatalf("del = %+v", res)
	}
	res = apply(t, s, &Command{Op: OpGet, Key: []byte("k")})
	if res.Found {
		t.Fatal("deleted key visible")
	}
	res = apply(t, s, &Command{Op: OpDel, Key: []byte("k")})
	if res.Found || res.N != 0 {
		t.Fatalf("double del = %+v", res)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestHashOps(t *testing.T) {
	s := NewStore()
	apply(t, s, &Command{Op: OpHMSet, Key: []byte("h"), Field: []byte("f1"), Value: []byte("v1")})
	apply(t, s, &Command{Op: OpHMSet, Key: []byte("h"), Field: []byte("f2"), Value: []byte("v2")})
	res := apply(t, s, &Command{Op: OpHGet, Key: []byte("h"), Field: []byte("f1")})
	if !res.Found || string(res.Value) != "v1" {
		t.Fatalf("hget = %+v", res)
	}
	res = apply(t, s, &Command{Op: OpHGet, Key: []byte("h"), Field: []byte("missing")})
	if res.Found {
		t.Fatal("missing field found")
	}
	res = apply(t, s, &Command{Op: OpHGet, Key: []byte("nohash"), Field: []byte("f")})
	if res.Found {
		t.Fatal("missing hash found")
	}
}

func TestIncr(t *testing.T) {
	s := NewStore()
	res := apply(t, s, &Command{Op: OpIncr, Key: []byte("c"), Delta: 5})
	if string(res.Value) != "5" {
		t.Fatalf("incr = %q", res.Value)
	}
	res = apply(t, s, &Command{Op: OpIncr, Key: []byte("c"), Delta: -7})
	if string(res.Value) != "-2" {
		t.Fatalf("incr = %q", res.Value)
	}
	apply(t, s, &Command{Op: OpSet, Key: []byte("s"), Value: []byte("abc")})
	if _, err := s.Apply(&Command{Op: OpIncr, Key: []byte("s"), Delta: 1}); err == nil {
		t.Fatal("incr of non-integer should fail")
	}
}

func TestListOps(t *testing.T) {
	s := NewStore()
	apply(t, s, &Command{Op: OpRPush, Key: []byte("l"), Value: []byte("b")})
	apply(t, s, &Command{Op: OpRPush, Key: []byte("l"), Value: []byte("c")})
	res := apply(t, s, &Command{Op: OpLPush, Key: []byte("l"), Value: []byte("a")})
	if res.N != 3 {
		t.Fatalf("len = %d", res.N)
	}
	res = apply(t, s, &Command{Op: OpLRange, Key: []byte("l"), Start: 0, Stop: -1})
	if len(res.Values) != 3 || string(res.Values[0]) != "a" || string(res.Values[2]) != "c" {
		t.Fatalf("lrange = %q", res.Values)
	}
	res = apply(t, s, &Command{Op: OpLRange, Key: []byte("l"), Start: 1, Stop: 1})
	if len(res.Values) != 1 || string(res.Values[0]) != "b" {
		t.Fatalf("lrange[1:1] = %q", res.Values)
	}
	res = apply(t, s, &Command{Op: OpLRange, Key: []byte("l"), Start: -2, Stop: -1})
	if len(res.Values) != 2 || string(res.Values[0]) != "b" {
		t.Fatalf("lrange[-2:-1] = %q", res.Values)
	}
	res = apply(t, s, &Command{Op: OpLRange, Key: []byte("l"), Start: 5, Stop: 9})
	if len(res.Values) != 0 {
		t.Fatalf("empty range = %q", res.Values)
	}
	res = apply(t, s, &Command{Op: OpLRange, Key: []byte("nolist")})
	if res.Found {
		t.Fatal("missing list found")
	}
}

func TestSetDataType(t *testing.T) {
	s := NewStore()
	r1 := apply(t, s, &Command{Op: OpSAdd, Key: []byte("s"), Value: []byte("x")})
	r2 := apply(t, s, &Command{Op: OpSAdd, Key: []byte("s"), Value: []byte("x")})
	apply(t, s, &Command{Op: OpSAdd, Key: []byte("s"), Value: []byte("a")})
	if r1.N != 1 || r2.N != 0 {
		t.Fatalf("sadd = %d %d", r1.N, r2.N)
	}
	res := apply(t, s, &Command{Op: OpSMembers, Key: []byte("s")})
	if len(res.Values) != 2 || string(res.Values[0]) != "a" || string(res.Values[1]) != "x" {
		t.Fatalf("smembers = %q (must be sorted)", res.Values)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	s := NewStore()
	apply(t, s, &Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	for _, cmd := range []*Command{
		{Op: OpHMSet, Key: []byte("k"), Field: []byte("f"), Value: []byte("v")},
		{Op: OpHGet, Key: []byte("k"), Field: []byte("f")},
		{Op: OpLPush, Key: []byte("k"), Value: []byte("v")},
		{Op: OpLRange, Key: []byte("k")},
		{Op: OpSAdd, Key: []byte("k"), Value: []byte("v")},
		{Op: OpSMembers, Key: []byte("k")},
	} {
		if _, err := s.Apply(cmd); !errors.Is(err, ErrWrongType) {
			t.Fatalf("%v on string key: err = %v", cmd.Op, err)
		}
	}
	if _, err := s.Apply(&Command{Op: Op(99)}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCommandReadOnlyAndHashes(t *testing.T) {
	ro := []*Command{{Op: OpGet}, {Op: OpHGet}, {Op: OpLRange}, {Op: OpSMembers}}
	rw := []*Command{{Op: OpSet}, {Op: OpDel}, {Op: OpHMSet}, {Op: OpIncr}, {Op: OpLPush}, {Op: OpRPush}, {Op: OpSAdd}}
	for _, c := range ro {
		if !c.IsReadOnly() {
			t.Fatalf("%v should be read-only", c.Op)
		}
	}
	for _, c := range rw {
		if c.IsReadOnly() {
			t.Fatalf("%v should be a write", c.Op)
		}
	}
	a := &Command{Op: OpSet, Key: []byte("a")}
	b := &Command{Op: OpSet, Key: []byte("b")}
	if a.KeyHashes()[0] == b.KeyHashes()[0] {
		t.Fatal("different keys same hash")
	}
}

func TestCommandCodec(t *testing.T) {
	c := &Command{Op: OpLRange, Key: []byte("k"), Field: []byte("f"), Value: []byte("v"), Delta: -3, Start: -2, Stop: 9}
	got, err := DecodeCommand(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != c.Op || !bytes.Equal(got.Key, c.Key) || !bytes.Equal(got.Field, c.Field) ||
		!bytes.Equal(got.Value, c.Value) || got.Delta != -3 || got.Start != -2 || got.Stop != 9 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeCommand([]byte{1}); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestResultCodec(t *testing.T) {
	r := &Result{Found: true, Value: []byte("v"), Values: [][]byte{[]byte("a"), []byte("b")}, N: 7}
	got, err := DecodeResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Value) != "v" || len(got.Values) != 2 || got.N != 7 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeResult(nil); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{OpSet: "SET", OpGet: "GET", OpDel: "DEL", OpHMSet: "HMSET",
		OpHGet: "HGET", OpIncr: "INCR", OpLPush: "LPUSH", OpRPush: "RPUSH",
		OpLRange: "LRANGE", OpSAdd: "SADD", OpSMembers: "SMEMBERS", Op(42): "OP(42)"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%d = %q", op, op.String())
		}
	}
}

func TestAOFAppendAndReplay(t *testing.T) {
	dev := &MemDevice{}
	aof := NewAOF(dev, FsyncAlways)
	cmds := []*Command{
		{Op: OpSet, Key: []byte("a"), Value: []byte("1")},
		{Op: OpHMSet, Key: []byte("h"), Field: []byte("f"), Value: []byte("2")},
		{Op: OpIncr, Key: []byte("c"), Delta: 42},
		{Op: OpRPush, Key: []byte("l"), Value: []byte("x")},
		{Op: OpSAdd, Key: []byte("s"), Value: []byte("m")},
		{Op: OpDel, Key: []byte("a")},
	}
	for i, c := range cmds {
		if err := aof.Append(c, rifl.RPCID{Client: 1, Seq: rifl.Seq(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if aof.Appended() != 6 || aof.Synced() != 6 {
		t.Fatalf("appended=%d synced=%d", aof.Appended(), aof.Synced())
	}
	s, tracker, n, err := Replay(dev.DurableBytes())
	if err != nil || n != 6 {
		t.Fatalf("replay: %v n=%d", err, n)
	}
	// The tracker was rebuilt from the IDs in the log.
	if tracker.Len() != 6 {
		t.Fatalf("tracker len = %d", tracker.Len())
	}
	if o, _ := tracker.Begin(rifl.RPCID{Client: 1, Seq: 3}, 0); o != rifl.Completed {
		t.Fatalf("restored id outcome = %v", o)
	}
	if res, _ := s.Apply(&Command{Op: OpGet, Key: []byte("a")}); res.Found {
		t.Fatal("deleted key revived")
	}
	res, _ := s.Apply(&Command{Op: OpHGet, Key: []byte("h"), Field: []byte("f")})
	if string(res.Value) != "2" {
		t.Fatalf("h.f = %q", res.Value)
	}
	res, _ = s.Apply(&Command{Op: OpGet, Key: []byte("c")})
	if string(res.Value) != "42" {
		t.Fatalf("c = %q", res.Value)
	}
}

func TestAOFFsyncPolicies(t *testing.T) {
	// On-demand: appends are not durable until Sync.
	dev := &MemDevice{}
	aof := NewAOF(dev, FsyncOnDemand)
	aof.Append(&Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")}, rifl.RPCID{Client: 1, Seq: 1})
	if len(dev.DurableBytes()) != 0 {
		t.Fatal("on-demand should not fsync per append")
	}
	if aof.Synced() != 0 {
		t.Fatal("synced counter should lag")
	}
	if err := aof.Sync(); err != nil {
		t.Fatal(err)
	}
	if aof.Synced() != 1 || len(dev.DurableBytes()) == 0 {
		t.Fatal("sync did not flush")
	}
	// Never: Sync is a no-op.
	dev2 := &MemDevice{}
	aof2 := NewAOF(dev2, FsyncNever)
	aof2.Append(&Command{Op: OpSet, Key: []byte("k"), Value: []byte("v")}, rifl.RPCID{Client: 1, Seq: 1})
	aof2.Sync()
	if dev2.SyncCount != 0 {
		t.Fatal("never policy must not fsync")
	}
	for p, want := range map[FsyncPolicy]string{FsyncAlways: "always", FsyncOnDemand: "on-demand", FsyncNever: "never", FsyncPolicy(9): "unknown"} {
		if p.String() != want {
			t.Fatalf("%d = %q", p, p)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dev := &MemDevice{}
	aof := NewAOF(dev, FsyncOnDemand)
	aof.Append(&Command{Op: OpSet, Key: []byte("a"), Value: []byte("1")}, rifl.RPCID{Client: 1, Seq: 1})
	aof.Append(&Command{Op: OpSet, Key: []byte("b"), Value: []byte("2")}, rifl.RPCID{Client: 1, Seq: 2})
	aof.Sync()
	full := dev.DurableBytes()
	// Cut mid-record: replay keeps the intact prefix.
	s, _, n, err := Replay(full[:len(full)-3])
	if err != nil || n != 1 {
		t.Fatalf("torn replay: %v n=%d", err, n)
	}
	if res, _ := s.Apply(&Command{Op: OpGet, Key: []byte("a")}); !res.Found {
		t.Fatal("first record lost")
	}
	if res, _ := s.Apply(&Command{Op: OpGet, Key: []byte("b")}); res.Found {
		t.Fatal("torn record applied")
	}
}

func TestAOFDeviceFailure(t *testing.T) {
	dev := &MemDevice{FailNextOps: 1}
	aof := NewAOF(dev, FsyncOnDemand)
	if err := aof.Append(&Command{Op: OpSet, Key: []byte("k")}, rifl.RPCID{Client: 1, Seq: 1}); err == nil {
		t.Fatal("write failure not surfaced")
	}
	if err := aof.Append(&Command{Op: OpSet, Key: []byte("k")}, rifl.RPCID{Client: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	dev.FailNextOps = 1
	if err := aof.Sync(); err == nil {
		t.Fatal("sync failure not surfaced")
	}
}

func TestReplayEqualsDirectProperty(t *testing.T) {
	// Property: applying commands directly and replaying the AOF produce
	// stores with identical observable state.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := &MemDevice{}
		aof := NewAOF(dev, FsyncOnDemand)
		direct := NewStore()
		keys := []string{"a", "b", "c"}
		for i := 0; i < 150; i++ {
			k := []byte(keys[rng.Intn(len(keys))])
			var cmd *Command
			switch rng.Intn(6) {
			case 0:
				cmd = &Command{Op: OpSet, Key: append([]byte("s-"), k...), Value: []byte(fmt.Sprint(i))}
			case 1:
				cmd = &Command{Op: OpIncr, Key: append([]byte("c-"), k...), Delta: int64(rng.Intn(9) - 4)}
			case 2:
				cmd = &Command{Op: OpHMSet, Key: append([]byte("h-"), k...), Field: []byte{byte('a' + rng.Intn(3))}, Value: []byte(fmt.Sprint(i))}
			case 3:
				cmd = &Command{Op: OpRPush, Key: append([]byte("l-"), k...), Value: []byte(fmt.Sprint(i))}
			case 4:
				cmd = &Command{Op: OpSAdd, Key: append([]byte("S-"), k...), Value: []byte(fmt.Sprint(i % 7))}
			case 5:
				cmd = &Command{Op: OpDel, Key: append([]byte("s-"), k...)}
			}
			if _, err := direct.Apply(cmd); err != nil {
				return false
			}
			if err := aof.Append(cmd, rifl.RPCID{Client: 1, Seq: rifl.Seq(i + 1)}); err != nil {
				return false
			}
		}
		if err := aof.Sync(); err != nil {
			return false
		}
		replayed, _, _, err := Replay(dev.DurableBytes())
		if err != nil {
			return false
		}
		// Compare observable state via reads.
		for _, k := range keys {
			for _, prefix := range []string{"s-", "c-"} {
				key := []byte(prefix + k)
				a, _ := direct.Apply(&Command{Op: OpGet, Key: key})
				b, _ := replayed.Apply(&Command{Op: OpGet, Key: key})
				if a.Found != b.Found || !bytes.Equal(a.Value, b.Value) {
					return false
				}
			}
			la, _ := direct.Apply(&Command{Op: OpLRange, Key: []byte("l-" + k), Stop: -1})
			lb, _ := replayed.Apply(&Command{Op: OpLRange, Key: []byte("l-" + k), Stop: -1})
			if len(la.Values) != len(lb.Values) {
				return false
			}
			sa, _ := direct.Apply(&Command{Op: OpSMembers, Key: []byte("S-" + k)})
			sb, _ := replayed.Apply(&Command{Op: OpSMembers, Key: []byte("S-" + k)})
			if len(sa.Values) != len(sb.Values) {
				return false
			}
			ha, _ := direct.Apply(&Command{Op: OpHGet, Key: []byte("h-" + k), Field: []byte("a")})
			hb, _ := replayed.Apply(&Command{Op: OpHGet, Key: []byte("h-" + k), Field: []byte("a")})
			if ha.Found != hb.Found || !bytes.Equal(ha.Value, hb.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStoreSet(b *testing.B) {
	s := NewStore()
	val := make([]byte, 100)
	for i := 0; i < b.N; i++ {
		s.Apply(&Command{Op: OpSet, Key: []byte(fmt.Sprintf("key%d", i%4096)), Value: val})
	}
}
