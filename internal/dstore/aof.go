package dstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"curp/internal/rifl"
)

// FsyncPolicy is when the AOF flushes to stable storage, mirroring Redis's
// appendfsync configuration.
type FsyncPolicy int

const (
	// FsyncAlways syncs before every append returns — Redis's only
	// consistent-durable mode, the 10–100× penalty CURP hides (§5.4).
	FsyncAlways FsyncPolicy = iota
	// FsyncOnDemand syncs only when Sync is called — the CURP mode, where
	// the log is written asynchronously in the background and witnesses
	// carry durability in the meantime.
	FsyncOnDemand
	// FsyncNever never syncs (the non-durable baseline).
	FsyncNever
)

// String names the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOnDemand:
		return "on-demand"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// Device abstracts the stable storage under the AOF so tests and the
// simulator can model fsync latency without real disks.
type Device interface {
	io.Writer
	// Sync flushes buffered writes to stable storage.
	Sync() error
}

// FileDevice is a real file-backed device.
type FileDevice struct{ F *os.File }

// Write implements Device.
func (d FileDevice) Write(p []byte) (int, error) { return d.F.Write(p) }

// Sync implements Device.
func (d FileDevice) Sync() error { return d.F.Sync() }

// MemDevice is an in-memory device with a configurable fsync latency,
// standing in for the paper's NVMe SSDs (50–100µs fsync). It tracks which
// prefix of the log is "durable" so crash tests can drop the tail.
type MemDevice struct {
	mu          sync.Mutex
	buf         []byte
	durable     int
	FsyncDelay  time.Duration
	SyncCount   int
	FailNextOps int // inject write/sync failures
}

// Write implements Device.
func (d *MemDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.FailNextOps > 0 {
		d.FailNextOps--
		return 0, errors.New("memdevice: injected write failure")
	}
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	if d.FailNextOps > 0 {
		d.FailNextOps--
		d.mu.Unlock()
		return errors.New("memdevice: injected sync failure")
	}
	delay := d.FsyncDelay
	d.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	d.mu.Lock()
	d.durable = len(d.buf)
	d.SyncCount++
	d.mu.Unlock()
	return nil
}

// DurableBytes returns the synced prefix (what survives a "crash").
func (d *MemDevice) DurableBytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf[:d.durable]...)
}

// Bytes returns the full written log including the unsynced tail.
func (d *MemDevice) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...)
}

// AOF is the append-only command log. Each record carries the command AND
// its RIFL RPC ID (paper §3.3: "if a system replicates client requests ...
// each request already contains its ID"), so recovery can rebuild the
// completion-record table and filter witness replays of commands that
// already reached the durable log. Safe for concurrent use.
type AOF struct {
	mu     sync.Mutex
	dev    Device
	policy FsyncPolicy
	// appended counts commands appended; synced counts commands known
	// durable.
	appended uint64
	synced   uint64
}

// NewAOF creates an append-only file over dev with the given policy.
func NewAOF(dev Device, policy FsyncPolicy) *AOF {
	return &AOF{dev: dev, policy: policy}
}

// Policy returns the fsync policy.
func (a *AOF) Policy() FsyncPolicy { return a.policy }

// Append writes one command record tagged with its RIFL identity and,
// under FsyncAlways, syncs before returning.
func (a *AOF) Append(cmd *Command, id rifl.RPCID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	body := cmd.Encode()
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(id.Client))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(id.Seq))
	if _, err := a.dev.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := a.dev.Write(body); err != nil {
		return err
	}
	a.appended++
	if a.policy == FsyncAlways {
		if err := a.dev.Sync(); err != nil {
			return err
		}
		a.synced = a.appended
	}
	return nil
}

// Sync flushes to stable storage (no-op counters under FsyncNever).
func (a *AOF) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.policy == FsyncNever {
		return nil
	}
	if err := a.dev.Sync(); err != nil {
		return err
	}
	a.synced = a.appended
	return nil
}

// Appended returns the number of commands appended.
func (a *AOF) Appended() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appended
}

// Synced returns the number of commands known durable.
func (a *AOF) Synced() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.synced
}

// AOFRecord is one decoded log record.
type AOFRecord struct {
	ID  rifl.RPCID
	Cmd *Command
}

// DecodeLog parses an AOF byte stream, ignoring a truncated trailing
// record (torn write), as in Redis's aof-load-truncated behaviour.
func DecodeLog(log []byte) ([]AOFRecord, error) {
	var out []AOFRecord
	for len(log) >= 20 {
		sz := binary.LittleEndian.Uint32(log)
		if int(sz) > len(log)-20 {
			break // torn tail
		}
		id := rifl.RPCID{
			Client: rifl.ClientID(binary.LittleEndian.Uint64(log[4:])),
			Seq:    rifl.Seq(binary.LittleEndian.Uint64(log[12:])),
		}
		cmd, err := DecodeCommand(log[20 : 20+sz])
		if err != nil {
			return nil, fmt.Errorf("dstore: corrupt AOF record %d: %w", len(out), err)
		}
		out = append(out, AOFRecord{ID: id, Cmd: cmd})
		log = log[20+sz:]
	}
	return out, nil
}

// Replay rebuilds a fresh store (and completion-record tracker) from an
// AOF byte stream — the recovery path. It returns the store, the rebuilt
// tracker, and the number of commands applied.
func Replay(log []byte) (*Store, *rifl.Tracker, int, error) {
	records, err := DecodeLog(log)
	if err != nil {
		return nil, nil, 0, err
	}
	s := NewStore()
	tracker := rifl.NewTracker()
	for i, rec := range records {
		res, err := s.Apply(rec.Cmd)
		if err != nil {
			return nil, nil, i, fmt.Errorf("dstore: replay record %d: %w", i, err)
		}
		if !rec.ID.IsZero() {
			tracker.Record(rec.ID, res.Encode())
		}
	}
	return s, tracker, len(records), nil
}
