package dstore

import (
	"context"
	"fmt"
	"sync"

	"curp/internal/commute"
	"curp/internal/core"
	"curp/internal/rifl"
	"curp/internal/witness"
)

// Engine is a CURP-enabled data-structure store server — the paper's
// modified Redis (§5.4): commands execute immediately and append to the
// AOF, but the fsync happens off the critical path; durability in the
// window before the fsync comes from client-recorded witnesses. The AOF
// plays the role backups play in the KV cluster: "syncing" means fsyncing
// the log (the paper: "In this experiment the log data is not replicated,
// but the same mechanism could be used to replicate the log data as
// well").
type Engine struct {
	execMu  sync.Mutex
	store   *Store
	aof     *AOF
	tracker *rifl.Tracker
	state   *core.MasterState
	id      uint64

	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncActive bool

	// syncKick feeds the single resident background syncer (capacity 1: a
	// kick while one is pending coalesces) — the same pattern as the kv
	// master's backgroundSync. Before this existed, every speculative
	// command past the batch threshold spawned its own goroutine into
	// syncAndWait, where the herd parked on syncCond and was woken en
	// masse by every completed fsync.
	syncKick  chan struct{}
	closeOnce sync.Once
	closed    chan struct{}

	// pendingGC accumulates the (keyHash, rpcID) pairs of appended-but-not-
	// yet-fsynced commands; each successful fsync collects exactly these
	// from the witnesses — one batched GC per witness per sync. (The old
	// snapshot-everything GC could drop a witness record whose command was
	// recorded in parallel with an Update still in flight: the record was
	// the command's ONLY durability until its AOF append, so a crash in
	// that window lost a completed operation.) lastGC holds the previous
	// pass's pairs for one retry round: a record that landed after its
	// pair's first collection (clients record in parallel with the update
	// RPC) is swept by the next sync instead of lingering to §4.5
	// staleness.
	gcMu      sync.Mutex
	pendingGC []witness.GCKey
	lastGC    []witness.GCKey

	witnesses []*witness.Witness
}

// NewEngine builds a CURP data-structure engine over an AOF. cfg tunes the
// sync (fsync) batching policy.
func NewEngine(id uint64, aof *AOF, cfg core.MasterConfig) *Engine {
	e := &Engine{
		store:   NewStore(),
		aof:     aof,
		tracker: rifl.NewTracker(),
		state:   core.NewMasterState(cfg),
		id:      id,
	}
	e.syncCond = sync.NewCond(&e.syncMu)
	e.syncKick = make(chan struct{}, 1)
	e.closed = make(chan struct{})
	go e.backgroundSync()
	return e
}

// Close stops the resident background syncer. Idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
}

// TriggerSync asks the background syncer to run (coalescing with any
// already-pending kick). It never blocks the caller.
func (e *Engine) TriggerSync() {
	select {
	case e.syncKick <- struct{}{}:
	default: // a kick is already pending; the syncer will cover this op
	}
}

// backgroundSync is the engine's one resident background syncer: each kick
// fsyncs everything appended so far, so any number of triggers while a
// sync runs collapse into a single follow-up pass.
func (e *Engine) backgroundSync() {
	for {
		select {
		case <-e.closed:
			return
		case <-e.syncKick:
			e.syncAndWait(e.head())
		}
	}
}

// noteAppend queues a just-appended command's witness GC pairs for the
// fsync that will make it durable.
func (e *Engine) noteAppend(keyHashes []uint64, id rifl.RPCID) {
	e.gcMu.Lock()
	e.pendingGC = append(e.pendingGC, witness.GCKeys(keyHashes, id)...)
	e.gcMu.Unlock()
}

// AttachWitnesses registers the engine's witnesses (co-hosted instances;
// in the paper they are separate Redis servers reached over TCP). They
// receive gc RPC equivalents after each fsync.
func (e *Engine) AttachWitnesses(ws []*witness.Witness) {
	e.witnesses = ws
	e.state.SetWitnessListVersion(1)
}

// Store exposes the underlying store (tests).
func (e *Engine) Store() *Store { return e.store }

// State exposes protocol counters.
func (e *Engine) State() *core.MasterState { return e.state }

// ID returns the engine's master ID.
func (e *Engine) ID() uint64 { return e.id }

// lsn tracks executed mutations; the AOF append index is the log position.
func (e *Engine) head() uint64 { return e.aof.Appended() }

// Update implements core.MasterAPI: execute a mutating command, append it
// to the AOF, and reply speculatively unless it conflicts with an
// un-fsynced command on the same key.
func (e *Engine) Update(ctx context.Context, req *core.Request) (*core.Reply, error) {
	if !e.state.CheckWitnessList(req.WitnessListVersion) {
		return &core.Reply{Status: core.StatusStaleWitnessList}, nil
	}
	e.execMu.Lock()
	outcome, saved := e.tracker.Begin(req.ID, req.Ack)
	switch outcome {
	case rifl.Completed:
		conflict := e.state.Conflicts(req.KeyHashes, commute.ClassWrite)
		e.execMu.Unlock()
		if conflict {
			if err := e.syncAndWait(e.head()); err != nil {
				return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
			}
		}
		return &core.Reply{Status: core.StatusOK, Synced: true, Payload: saved}, nil
	case rifl.Stale, rifl.Expired:
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusIgnored}, nil
	}
	cmd, err := DecodeCommand(req.Payload)
	if err != nil {
		e.execMu.Unlock()
		return nil, err
	}
	conflict := e.state.Conflicts(req.KeyHashes, commute.ClassWrite)
	res, err := e.store.Apply(cmd)
	if err != nil {
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
	}
	if err := e.aof.Append(cmd, req.ID); err != nil {
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusError, Err: fmt.Sprintf("aof: %v", err)}, nil
	}
	lsn := e.aof.Appended()
	hot := e.state.NoteMutation(req.KeyHashes, lsn, commute.ClassWrite)
	e.tracker.Record(req.ID, res.Encode())
	e.noteAppend(req.KeyHashes, req.ID)
	e.execMu.Unlock()

	if conflict {
		e.state.CountConflictSync()
		if err := e.syncAndWait(lsn); err != nil {
			return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
		}
		return &core.Reply{Status: core.StatusOK, Synced: true, Payload: res.Encode()}, nil
	}
	e.state.CountSpeculative()
	if hot || e.state.NeedsBatchSync() {
		if e.state.NeedsBatchSync() {
			e.state.CountBatchSync()
		}
		e.TriggerSync()
	}
	return &core.Reply{Status: core.StatusOK, Synced: false, Payload: res.Encode()}, nil
}

// UpdateBatch implements core.MasterAPI: execute a pipelined batch of
// commands in order. Each command succeeds or fails independently; the
// AOF sync policy (and the conflict path's fsync-before-reply) is the
// same as for single updates, so a batch with several conflicting
// commands coalesces naturally onto the engine's one-outstanding-sync
// discipline.
func (e *Engine) UpdateBatch(ctx context.Context, reqs []*core.Request) ([]*core.Reply, error) {
	replies := make([]*core.Reply, len(reqs))
	for i, req := range reqs {
		reply, err := e.Update(ctx, req)
		if err != nil {
			return nil, err
		}
		replies[i] = reply
	}
	return replies, nil
}

// Read implements core.MasterAPI: linearizable reads, fsyncing first when
// the key has un-fsynced updates.
func (e *Engine) Read(ctx context.Context, req *core.Request) (*core.Reply, error) {
	cmd, err := DecodeCommand(req.Payload)
	if err != nil {
		return nil, err
	}
	if !cmd.IsReadOnly() {
		return &core.Reply{Status: core.StatusError, Err: "dstore: Read requires a read-only command"}, nil
	}
	for {
		e.execMu.Lock()
		if !e.state.Conflicts(req.KeyHashes, commute.ClassWrite) {
			res, err := e.store.Apply(cmd)
			e.execMu.Unlock()
			if err != nil {
				return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
			}
			return &core.Reply{Status: core.StatusOK, Synced: true, Payload: res.Encode()}, nil
		}
		e.execMu.Unlock()
		e.state.CountReadBlock()
		if err := e.syncAndWait(e.head()); err != nil {
			return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
		}
	}
}

// Sync implements core.MasterAPI: the client's slow-path sync RPC.
func (e *Engine) Sync(ctx context.Context) error {
	return e.syncAndWait(e.head())
}

// syncAndWait drives fsyncs with the one-outstanding-sync discipline and
// garbage-collects witnesses afterwards.
func (e *Engine) syncAndWait(target uint64) error {
	for {
		if e.state.SyncedLSN() >= target {
			return nil
		}
		e.syncMu.Lock()
		if e.syncActive {
			e.syncCond.Wait()
			e.syncMu.Unlock()
			continue
		}
		e.syncActive = true
		e.syncMu.Unlock()

		head := e.head()
		// Snapshot the GC pairs before the fsync: everything queued by now
		// was appended by now, so this exact set becomes durable with the
		// fsync — and nothing recorded later (possibly for a command still
		// in flight) is touched. The previous pass's pairs ride along once
		// more to catch records that arrived after their first collection.
		e.gcMu.Lock()
		fresh := e.pendingGC
		e.pendingGC = nil
		gcKeys := append(append([]witness.GCKey(nil), e.lastGC...), fresh...)
		e.gcMu.Unlock()
		err := e.aof.Sync()
		if err == nil {
			e.state.NoteSync(head)
			e.gcWitnesses(gcKeys)
			e.gcMu.Lock()
			e.lastGC = fresh
			e.gcMu.Unlock()
		} else {
			// The fsync failed; the fresh pairs are not durable yet.
			// Requeue them for the next attempt.
			e.gcMu.Lock()
			e.pendingGC = append(fresh, e.pendingGC...)
			e.gcMu.Unlock()
		}

		e.syncMu.Lock()
		e.syncActive = false
		e.syncCond.Broadcast()
		e.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// gcWitnesses collects exactly the just-fsynced commands' records from
// every witness: one batched GC pass per witness per sync (the paper's
// batched gc-by-RPC-ID-list, §4.5). Collecting by exact ID matters beyond
// RPC economy: a record may exist for a command whose Update RPC is still
// in flight (clients record in parallel), and that record is the command's
// only durability until its AOF append — the old snapshot-everything flush
// could drop it, losing a completed operation to a crash in that window.
//
// Records a witness flags as suspected uncollected garbage (they survived
// several passes — e.g. their gc pairs were consumed by a sync that raced
// the record's arrival) get the kv master's §4.5 treatment: re-execute
// through RIFL (a duplicate is filtered; an orphan becomes durable) and
// queue their pairs for the next pass.
func (e *Engine) gcWitnesses(keys []witness.GCKey) {
	if len(keys) == 0 {
		return
	}
	var requeue []witness.GCKey
	for _, w := range e.witnesses {
		for _, rec := range w.GC(keys) {
			e.retryStaleRecord(rec)
			requeue = append(requeue, witness.GCKeys(rec.KeyHashes, rec.ID)...)
		}
	}
	if len(requeue) > 0 {
		e.gcMu.Lock()
		e.pendingGC = append(e.pendingGC, requeue...)
		e.gcMu.Unlock()
	}
}

// retryStaleRecord re-executes a suspected-uncollected witness record;
// RIFL filters the (overwhelmingly common) duplicates.
func (e *Engine) retryStaleRecord(rec witness.Record) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if outcome, _ := e.tracker.Begin(rec.ID, 0); outcome != rifl.New {
		return
	}
	cmd, err := DecodeCommand(rec.Request)
	if err != nil {
		return
	}
	res, err := e.store.Apply(cmd)
	if err != nil {
		return
	}
	if err := e.aof.Append(cmd, rec.ID); err != nil {
		return
	}
	e.state.NoteMutation(rec.KeyHashes, e.aof.Appended(), commute.ClassWrite)
	e.tracker.Record(rec.ID, res.Encode())
}

// Recover rebuilds an engine after a crash: replay the durable AOF prefix
// (rebuilding the RIFL completion-record table from the IDs each record
// carries), then replay witness records with RIFL filtering duplicates,
// then fsync — the same restore-then-replay recipe as §3.3, with the AOF
// standing in for backups.
func Recover(id uint64, durableLog []byte, w *witness.Witness, newAOF *AOF, cfg core.MasterConfig) (*Engine, error) {
	store, tracker, _, err := Replay(durableLog)
	if err != nil {
		return nil, err
	}
	e := NewEngine(id, newAOF, cfg)
	e.store = store
	e.tracker = tracker
	// Reconstruct the AOF so future recoveries see the restored prefix.
	// Records are re-appended without fsync; the final Sync covers them.
	rebuilt, err := DecodeLog(durableLog)
	if err != nil {
		return nil, err
	}
	for _, rec := range rebuilt {
		if err := e.aof.Append(rec.Cmd, rec.ID); err != nil {
			return nil, err
		}
	}
	// Witness replay, exactly-once: requests whose IDs already appear in
	// the restored log are filtered by the tracker. The witness freezes,
	// so clients of the old engine cannot complete updates anymore.
	if w != nil {
		e.tracker.SetRecoveryMode(true)
		for _, rec := range w.GetRecoveryData() {
			outcome, _ := e.tracker.Begin(rec.ID, 0)
			if outcome != rifl.New {
				continue
			}
			cmd, err := DecodeCommand(rec.Request)
			if err != nil {
				continue
			}
			res, err := e.store.Apply(cmd)
			if err != nil {
				continue
			}
			if err := e.aof.Append(cmd, rec.ID); err != nil {
				return nil, err
			}
			e.state.NoteMutation(rec.KeyHashes, e.aof.Appended(), commute.ClassWrite)
			e.tracker.Record(rec.ID, res.Encode())
		}
		e.tracker.SetRecoveryMode(false)
	}
	if err := e.aof.Sync(); err != nil {
		return nil, err
	}
	e.state.InitRestored(e.aof.Appended(), e.aof.Appended())
	return e, nil
}

// WitnessAdapter adapts an in-process witness.Witness to core.WitnessAPI,
// standing in for the separate witness servers of the paper's Redis
// deployment.
type WitnessAdapter struct{ W *witness.Witness }

// RecordBatch implements core.WitnessAPI.
func (a WitnessAdapter) RecordBatch(ctx context.Context, masterID uint64, recs []witness.Record) ([]witness.RecordResult, error) {
	return a.W.RecordBatch(masterID, recs), nil
}

// Commutes implements core.WitnessAPI.
func (a WitnessAdapter) Commutes(ctx context.Context, keyHashes []uint64) (bool, error) {
	return a.W.Commutes(keyHashes), nil
}

// Drop implements core.WitnessAPI (client-side retraction of abandoned
// RPCs' records).
func (a WitnessAdapter) Drop(ctx context.Context, masterID uint64, keys []witness.GCKey) error {
	return a.W.DropRecords(keys)
}
