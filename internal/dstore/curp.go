package dstore

import (
	"context"
	"fmt"
	"sync"

	"curp/internal/core"
	"curp/internal/rifl"
	"curp/internal/witness"
)

// Engine is a CURP-enabled data-structure store server — the paper's
// modified Redis (§5.4): commands execute immediately and append to the
// AOF, but the fsync happens off the critical path; durability in the
// window before the fsync comes from client-recorded witnesses. The AOF
// plays the role backups play in the KV cluster: "syncing" means fsyncing
// the log (the paper: "In this experiment the log data is not replicated,
// but the same mechanism could be used to replicate the log data as
// well").
type Engine struct {
	execMu  sync.Mutex
	store   *Store
	aof     *AOF
	tracker *rifl.Tracker
	state   *core.MasterState
	id      uint64

	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncActive bool

	witnesses []*witness.Witness
}

// NewEngine builds a CURP data-structure engine over an AOF. cfg tunes the
// sync (fsync) batching policy.
func NewEngine(id uint64, aof *AOF, cfg core.MasterConfig) *Engine {
	e := &Engine{
		store:   NewStore(),
		aof:     aof,
		tracker: rifl.NewTracker(),
		state:   core.NewMasterState(cfg),
		id:      id,
	}
	e.syncCond = sync.NewCond(&e.syncMu)
	return e
}

// AttachWitnesses registers the engine's witnesses (co-hosted instances;
// in the paper they are separate Redis servers reached over TCP). They
// receive gc RPC equivalents after each fsync.
func (e *Engine) AttachWitnesses(ws []*witness.Witness) {
	e.witnesses = ws
	e.state.SetWitnessListVersion(1)
}

// Store exposes the underlying store (tests).
func (e *Engine) Store() *Store { return e.store }

// State exposes protocol counters.
func (e *Engine) State() *core.MasterState { return e.state }

// ID returns the engine's master ID.
func (e *Engine) ID() uint64 { return e.id }

// lsn tracks executed mutations; the AOF append index is the log position.
func (e *Engine) head() uint64 { return e.aof.Appended() }

// Update implements core.MasterAPI: execute a mutating command, append it
// to the AOF, and reply speculatively unless it conflicts with an
// un-fsynced command on the same key.
func (e *Engine) Update(ctx context.Context, req *core.Request) (*core.Reply, error) {
	if !e.state.CheckWitnessList(req.WitnessListVersion) {
		return &core.Reply{Status: core.StatusStaleWitnessList}, nil
	}
	e.execMu.Lock()
	outcome, saved := e.tracker.Begin(req.ID, req.Ack)
	switch outcome {
	case rifl.Completed:
		conflict := e.state.Conflicts(req.KeyHashes)
		e.execMu.Unlock()
		if conflict {
			if err := e.syncAndWait(e.head()); err != nil {
				return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
			}
		}
		return &core.Reply{Status: core.StatusOK, Synced: true, Payload: saved}, nil
	case rifl.Stale, rifl.Expired:
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusIgnored}, nil
	}
	cmd, err := DecodeCommand(req.Payload)
	if err != nil {
		e.execMu.Unlock()
		return nil, err
	}
	conflict := e.state.Conflicts(req.KeyHashes)
	res, err := e.store.Apply(cmd)
	if err != nil {
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
	}
	if err := e.aof.Append(cmd, req.ID); err != nil {
		e.execMu.Unlock()
		return &core.Reply{Status: core.StatusError, Err: fmt.Sprintf("aof: %v", err)}, nil
	}
	lsn := e.aof.Appended()
	hot := e.state.NoteMutation(req.KeyHashes, lsn)
	e.tracker.Record(req.ID, res.Encode())
	e.execMu.Unlock()

	if conflict {
		e.state.CountConflictSync()
		if err := e.syncAndWait(lsn); err != nil {
			return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
		}
		return &core.Reply{Status: core.StatusOK, Synced: true, Payload: res.Encode()}, nil
	}
	e.state.CountSpeculative()
	if hot || e.state.NeedsBatchSync() {
		if e.state.NeedsBatchSync() {
			e.state.CountBatchSync()
		}
		go e.syncAndWait(e.head())
	}
	return &core.Reply{Status: core.StatusOK, Synced: false, Payload: res.Encode()}, nil
}

// UpdateBatch implements core.MasterAPI: execute a pipelined batch of
// commands in order. Each command succeeds or fails independently; the
// AOF sync policy (and the conflict path's fsync-before-reply) is the
// same as for single updates, so a batch with several conflicting
// commands coalesces naturally onto the engine's one-outstanding-sync
// discipline.
func (e *Engine) UpdateBatch(ctx context.Context, reqs []*core.Request) ([]*core.Reply, error) {
	replies := make([]*core.Reply, len(reqs))
	for i, req := range reqs {
		reply, err := e.Update(ctx, req)
		if err != nil {
			return nil, err
		}
		replies[i] = reply
	}
	return replies, nil
}

// Read implements core.MasterAPI: linearizable reads, fsyncing first when
// the key has un-fsynced updates.
func (e *Engine) Read(ctx context.Context, req *core.Request) (*core.Reply, error) {
	cmd, err := DecodeCommand(req.Payload)
	if err != nil {
		return nil, err
	}
	if !cmd.IsReadOnly() {
		return &core.Reply{Status: core.StatusError, Err: "dstore: Read requires a read-only command"}, nil
	}
	for {
		e.execMu.Lock()
		if !e.state.Conflicts(req.KeyHashes) {
			res, err := e.store.Apply(cmd)
			e.execMu.Unlock()
			if err != nil {
				return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
			}
			return &core.Reply{Status: core.StatusOK, Synced: true, Payload: res.Encode()}, nil
		}
		e.execMu.Unlock()
		e.state.CountReadBlock()
		if err := e.syncAndWait(e.head()); err != nil {
			return &core.Reply{Status: core.StatusError, Err: err.Error()}, nil
		}
	}
}

// Sync implements core.MasterAPI: the client's slow-path sync RPC.
func (e *Engine) Sync(ctx context.Context) error {
	return e.syncAndWait(e.head())
}

// syncAndWait drives fsyncs with the one-outstanding-sync discipline and
// garbage-collects witnesses afterwards.
func (e *Engine) syncAndWait(target uint64) error {
	for {
		if e.state.SyncedLSN() >= target {
			return nil
		}
		e.syncMu.Lock()
		if e.syncActive {
			e.syncCond.Wait()
			e.syncMu.Unlock()
			continue
		}
		e.syncActive = true
		e.syncMu.Unlock()

		head := e.head()
		err := e.aof.Sync()
		if err == nil {
			e.state.NoteSync(head)
			e.gcWitnesses()
		}

		e.syncMu.Lock()
		e.syncActive = false
		e.syncCond.Broadcast()
		e.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// gcWitnesses drops everything recorded so far: after an fsync the entire
// AOF prefix is durable, so all witness records for this engine are
// collectable. (The paper batches gc by RPC ID list; with a single
// fsynced log, a full flush is equivalent and simpler.)
func (e *Engine) gcWitnesses() {
	for _, w := range e.witnesses {
		recs := collectAll(w)
		if len(recs) > 0 {
			w.GC(recs)
		}
	}
}

// collectAll lists (keyHash, id) pairs for every record in w.
func collectAll(w *witness.Witness) []witness.GCKey {
	var keys []witness.GCKey
	for _, r := range w.SnapshotRecords() {
		for _, kh := range r.KeyHashes {
			keys = append(keys, witness.GCKey{KeyHash: kh, ID: r.ID})
		}
	}
	return keys
}

// Recover rebuilds an engine after a crash: replay the durable AOF prefix
// (rebuilding the RIFL completion-record table from the IDs each record
// carries), then replay witness records with RIFL filtering duplicates,
// then fsync — the same restore-then-replay recipe as §3.3, with the AOF
// standing in for backups.
func Recover(id uint64, durableLog []byte, w *witness.Witness, newAOF *AOF, cfg core.MasterConfig) (*Engine, error) {
	store, tracker, _, err := Replay(durableLog)
	if err != nil {
		return nil, err
	}
	e := NewEngine(id, newAOF, cfg)
	e.store = store
	e.tracker = tracker
	// Reconstruct the AOF so future recoveries see the restored prefix.
	// Records are re-appended without fsync; the final Sync covers them.
	rebuilt, err := DecodeLog(durableLog)
	if err != nil {
		return nil, err
	}
	for _, rec := range rebuilt {
		if err := e.aof.Append(rec.Cmd, rec.ID); err != nil {
			return nil, err
		}
	}
	// Witness replay, exactly-once: requests whose IDs already appear in
	// the restored log are filtered by the tracker. The witness freezes,
	// so clients of the old engine cannot complete updates anymore.
	if w != nil {
		e.tracker.SetRecoveryMode(true)
		for _, rec := range w.GetRecoveryData() {
			outcome, _ := e.tracker.Begin(rec.ID, 0)
			if outcome != rifl.New {
				continue
			}
			cmd, err := DecodeCommand(rec.Request)
			if err != nil {
				continue
			}
			res, err := e.store.Apply(cmd)
			if err != nil {
				continue
			}
			if err := e.aof.Append(cmd, rec.ID); err != nil {
				return nil, err
			}
			e.state.NoteMutation(rec.KeyHashes, e.aof.Appended())
			e.tracker.Record(rec.ID, res.Encode())
		}
		e.tracker.SetRecoveryMode(false)
	}
	if err := e.aof.Sync(); err != nil {
		return nil, err
	}
	e.state.InitRestored(e.aof.Appended(), e.aof.Appended())
	return e, nil
}

// WitnessAdapter adapts an in-process witness.Witness to core.WitnessAPI,
// standing in for the separate witness servers of the paper's Redis
// deployment.
type WitnessAdapter struct{ W *witness.Witness }

// RecordBatch implements core.WitnessAPI.
func (a WitnessAdapter) RecordBatch(ctx context.Context, masterID uint64, recs []witness.Record) ([]witness.RecordResult, error) {
	return a.W.RecordBatch(masterID, recs), nil
}

// Commutes implements core.WitnessAPI.
func (a WitnessAdapter) Commutes(ctx context.Context, keyHashes []uint64) (bool, error) {
	return a.W.Commutes(keyHashes), nil
}

// Drop implements core.WitnessAPI (client-side retraction of abandoned
// RPCs' records).
func (a WitnessAdapter) Drop(ctx context.Context, masterID uint64, keys []witness.GCKey) error {
	return a.W.DropRecords(keys)
}
