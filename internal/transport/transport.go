// Package transport abstracts the byte-stream networks CURP runs over. Two
// implementations are provided: TCP (for real deployments via cmd/curpd) and
// an in-memory network with injectable one-way latency, asymmetric
// partitions, and blackholes — the test double standing in for the paper's
// InfiniBand and 10GbE fabrics. The protocol figures depend on RTT counts,
// not absolute wire speed, so an in-memory fabric with configured delays
// preserves the behaviour being measured (see DESIGN.md §3).
package transport

import (
	"net"
	"time"
)

// Network creates listeners and connections by symbolic address.
type Network interface {
	// Listen starts accepting connections at addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr. from identifies the caller for latency and
	// partition bookkeeping; TCP ignores it.
	Dial(from, addr string) (net.Conn, error)
}

// LatencyModel computes the one-way delay for a message of size bytes sent
// between two hosts. Implementations must be safe for concurrent use.
type LatencyModel interface {
	Delay(from, to string, size int) time.Duration
}

// LatencyFunc adapts a function to a LatencyModel.
type LatencyFunc func(from, to string, size int) time.Duration

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(from, to string, size int) time.Duration { return f(from, to, size) }

// NoLatency is a zero-delay model.
var NoLatency = LatencyFunc(func(string, string, int) time.Duration { return 0 })

// ConstantLatency returns a model with a fixed one-way delay between
// distinct hosts and zero delay for loopback traffic.
func ConstantLatency(d time.Duration) LatencyModel {
	return LatencyFunc(func(from, to string, _ int) time.Duration {
		if from == to {
			return 0
		}
		return d
	})
}
