package transport

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// JitteredLatency is a latency model with a base one-way delay plus
// lognormally distributed jitter, approximating datacenter fabrics whose
// RPC latency is tight at the median but heavy at the tail. The paper's
// Figure 8 attributes CURP's 2-witness Redis latency to exactly this kind
// of TCP tail; Sigma controls how heavy it is. Safe for concurrent use.
type JitteredLatency struct {
	// Base is the deterministic one-way delay between distinct hosts.
	Base time.Duration
	// JitterScale is the median of the lognormal jitter term.
	JitterScale time.Duration
	// Sigma is the lognormal shape parameter; 0 disables jitter.
	Sigma float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitteredLatency builds a jittered model with a deterministic seed.
func NewJitteredLatency(base, jitterScale time.Duration, sigma float64, seed int64) *JitteredLatency {
	return &JitteredLatency{
		Base:        base,
		JitterScale: jitterScale,
		Sigma:       sigma,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Delay implements LatencyModel.
func (j *JitteredLatency) Delay(from, to string, _ int) time.Duration {
	if from == to {
		return 0
	}
	d := j.Base
	if j.Sigma > 0 && j.JitterScale > 0 {
		j.mu.Lock()
		n := j.rng.NormFloat64()
		j.mu.Unlock()
		d += time.Duration(float64(j.JitterScale) * math.Exp(j.Sigma*n))
	}
	return d
}
