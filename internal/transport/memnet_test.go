package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipePair dials a connection and returns both ends.
func pipePair(t *testing.T, n *MemNetwork, client, server string) (net.Conn, net.Conn) {
	t.Helper()
	l, err := n.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cc, err := n.Dial(client, server)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return cc, r.c
}

func TestMemNetRoundTrip(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "client", "server")
	defer cc.Close()

	msg := []byte("hello curp")
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
	// Reply path.
	if _, err := sc.Write([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 3)
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ack" {
		t.Fatalf("got %q", buf)
	}
}

func TestMemNetPartialReads(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "b")
	defer cc.Close()
	cc.Write([]byte("abcdef"))
	one := make([]byte, 2)
	for _, want := range []string{"ab", "cd", "ef"} {
		if _, err := io.ReadFull(sc, one); err != nil {
			t.Fatal(err)
		}
		if string(one) != want {
			t.Fatalf("got %q want %q", one, want)
		}
	}
}

func TestMemNetAddrs(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "b")
	defer cc.Close()
	if cc.LocalAddr().String() != "a" || cc.RemoteAddr().String() != "b" {
		t.Fatalf("client addrs: %v %v", cc.LocalAddr(), cc.RemoteAddr())
	}
	if sc.LocalAddr().String() != "b" || sc.RemoteAddr().String() != "a" {
		t.Fatalf("server addrs: %v %v", sc.LocalAddr(), sc.RemoteAddr())
	}
	if cc.LocalAddr().Network() != "mem" {
		t.Fatal("network name")
	}
}

func TestMemNetLatency(t *testing.T) {
	n := NewMemNetwork(ConstantLatency(30 * time.Millisecond))
	cc, sc := pipePair(t, n, "a", "b")
	defer cc.Close()
	start := time.Now()
	cc.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("one-way delivery took %v, want ≥30ms", el)
	}
}

func TestMemNetFIFOUnderJitter(t *testing.T) {
	// Even with wildly jittered latency, the stream must stay in order.
	n := NewMemNetwork(NewJitteredLatency(0, 2*time.Millisecond, 2.0, 42))
	cc, sc := pipePair(t, n, "a", "b")
	defer cc.Close()
	go func() {
		for i := 0; i < 100; i++ {
			cc.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, 100)
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("out of order at %d: %d", i, buf[i])
		}
	}
}

func TestMemNetCloseSemantics(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "b")
	cc.Write([]byte("tail"))
	cc.Close()
	// Data written before close is still readable, then EOF.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := cc.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestMemNetReadDeadline(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "b")
	defer cc.Close()
	sc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := sc.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Clearing the deadline makes reads work again.
	sc.SetReadDeadline(time.Time{})
	cc.Write([]byte("y"))
	if _, err := io.ReadFull(sc, buf); err != nil {
		t.Fatal(err)
	}
	// SetDeadline delegates to read deadline.
	sc.SetDeadline(time.Now().Add(10 * time.Millisecond))
	if _, err := sc.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if err := sc.SetWriteDeadline(time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestMemNetDialErrors(t *testing.T) {
	n := NewMemNetwork(nil)
	if _, err := n.Dial("a", "nowhere"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemNetListenerClose(t *testing.T) {
	n := NewMemNetwork(nil)
	l, _ := n.Listen("srv")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; !errors.Is(err, ErrListenerClose) {
		t.Fatalf("accept err = %v", err)
	}
	// Address is reusable after close.
	if _, err := n.Listen("srv"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	if l.Addr().String() != "srv" {
		t.Fatal("addr")
	}
}

func TestMemNetPartition(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "b")
	n.Partition("a", "b")
	// Existing connections are reset.
	buf := make([]byte, 1)
	if _, err := sc.Read(buf); err == nil {
		t.Fatal("read on partitioned conn should fail")
	}
	_ = cc
	// New dials fail both directions.
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial err = %v", err)
	}
	// Heal restores connectivity.
	n.Heal("a", "b")
	cc2, sc2 := pipePair(t, n, "a", "b2") // fresh listener name to avoid reuse
	_ = sc2
	cc2.Close()
	l, _ := n.Listen("b3")
	defer l.Close()
	go l.Accept()
	if _, err := n.Dial("a", "b3"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestMemNetBlackhole(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "zombie", "backup")
	defer cc.Close()
	n.Blackhole("zombie", "backup")
	// Writes appear to succeed but deliver nothing.
	if _, err := cc.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	sc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := sc.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read err = %v", err)
	}
	// Reverse direction still works.
	if _, err := sc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(cc, buf[:2]); err != nil {
		t.Fatal(err)
	}
	n.Unblackhole("zombie", "backup")
	cc.Write([]byte("back"))
	sc.SetReadDeadline(time.Time{})
	if _, err := io.ReadFull(sc, buf); err != nil || string(buf) != "back" {
		t.Fatalf("after unblackhole: %v %q", err, buf)
	}
}

func TestMemNetCrashHost(t *testing.T) {
	n := NewMemNetwork(nil)
	cc, sc := pipePair(t, n, "a", "srv")
	n.CrashHost("srv")
	buf := make([]byte, 1)
	if _, err := cc.Read(buf); err == nil {
		t.Fatal("read from crashed host should fail")
	}
	_ = sc
	if _, err := n.Dial("a", "srv"); err == nil {
		t.Fatal("dial to crashed host should fail")
	}
	// Host can come back.
	if _, err := n.Listen("srv"); err != nil {
		t.Fatalf("relisten after crash: %v", err)
	}
}

func TestMemNetConcurrentTraffic(t *testing.T) {
	n := NewMemNetwork(ConstantLatency(time.Microsecond))
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := n.Dial("client", "srv")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(g + 1)}, 512)
			buf := make([]byte, len(msg))
			for i := 0; i < 50; i++ {
				if _, err := c.Write(msg); err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadFull(c, buf); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf, msg) {
					t.Errorf("echo mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestJitteredLatency(t *testing.T) {
	j := NewJitteredLatency(10*time.Microsecond, 2*time.Microsecond, 1.0, 7)
	if d := j.Delay("a", "a", 0); d != 0 {
		t.Fatalf("loopback delay = %v", d)
	}
	var min, max time.Duration = time.Hour, 0
	for i := 0; i < 1000; i++ {
		d := j.Delay("a", "b", 0)
		if d < 10*time.Microsecond {
			t.Fatalf("delay below base: %v", d)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max == min {
		t.Fatal("no jitter observed")
	}
	// Sigma=0 disables jitter.
	fixed := NewJitteredLatency(5*time.Microsecond, time.Microsecond, 0, 7)
	if d := fixed.Delay("a", "b", 0); d != 5*time.Microsecond {
		t.Fatalf("fixed delay = %v", d)
	}
}

func TestConstantLatencyLoopback(t *testing.T) {
	m := ConstantLatency(time.Millisecond)
	if m.Delay("h", "h", 0) != 0 {
		t.Fatal("loopback should be free")
	}
	if m.Delay("a", "b", 0) != time.Millisecond {
		t.Fatal("wrong delay")
	}
	if NoLatency.Delay("a", "b", 10) != 0 {
		t.Fatal("NoLatency should be zero")
	}
}

func TestTCPNetwork(t *testing.T) {
	var tn TCPNetwork
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
	}()
	c, err := tn.Dial("me", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("tcp echo: %v %q", err, buf)
	}
}
