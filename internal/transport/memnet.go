package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Errors returned by the in-memory network.
var (
	ErrAddrInUse     = errors.New("memnet: address already in use")
	ErrConnRefused   = errors.New("memnet: connection refused")
	ErrPartitioned   = errors.New("memnet: hosts partitioned")
	ErrListenerClose = errors.New("memnet: listener closed")
)

// MemNetwork is an in-memory Network. Connections are pairs of queues with
// per-message delivery delays computed by a LatencyModel. Tests and the
// benchmark harness inject failures with Partition, Blackhole, and
// CrashHost. Safe for concurrent use.
type MemNetwork struct {
	mu          sync.Mutex
	latency     LatencyModel
	listeners   map[string]*memListener
	partitioned map[[2]string]bool // directed: messages from a to b blocked at dial/write
	blackholed  map[[2]string]bool // directed: writes silently dropped
	conns       map[string][]*memConn
}

// NewMemNetwork creates an in-memory network with the given latency model
// (nil means zero latency).
func NewMemNetwork(latency LatencyModel) *MemNetwork {
	if latency == nil {
		latency = NoLatency
	}
	return &MemNetwork{
		latency:     latency,
		listeners:   make(map[string]*memListener),
		partitioned: make(map[[2]string]bool),
		blackholed:  make(map[[2]string]bool),
		conns:       make(map[string][]*memConn),
	}
}

// SetLatency replaces the latency model for subsequently sent messages.
func (n *MemNetwork) SetLatency(m LatencyModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m == nil {
		m = NoLatency
	}
	n.latency = m
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &memListener{net: n, addr: addr, backlog: make(chan *memConn, 128)}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(from, addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.partitioned[[2]string{from, addr}] || n.partitioned[[2]string{addr, from}] {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrPartitioned, from, addr)
	}
	l, ok := n.listeners[addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client := newMemConn(n, from, addr)
	server := newMemConn(n, addr, from)
	client.peer, server.peer = server, client
	n.conns[from] = append(n.conns[from], client)
	n.conns[addr] = append(n.conns[addr], server)
	n.mu.Unlock()

	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed():
		client.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
}

// Partition blocks all traffic between hosts a and b (both directions):
// existing connections between them are reset and new dials fail, modeling
// a network partition. Heal reverses it.
func (n *MemNetwork) Partition(a, b string) {
	n.mu.Lock()
	n.partitioned[[2]string{a, b}] = true
	n.partitioned[[2]string{b, a}] = true
	var toReset []*memConn
	for _, c := range n.conns[a] {
		if c.remoteHost == b {
			toReset = append(toReset, c, c.peer)
		}
	}
	n.mu.Unlock()
	for _, c := range toReset {
		c.reset()
	}
}

// Heal removes a partition between a and b.
func (n *MemNetwork) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, [2]string{a, b})
	delete(n.partitioned, [2]string{b, a})
}

// Blackhole makes writes from host `from` to host `to` vanish silently
// while the connection stays apparently healthy — the zombie-master
// scenario of paper §4.7. Unblackhole reverses it.
func (n *MemNetwork) Blackhole(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blackholed[[2]string{from, to}] = true
}

// Unblackhole removes a blackhole.
func (n *MemNetwork) Unblackhole(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blackholed, [2]string{from, to})
}

// CrashHost resets every connection of a host and removes its listeners,
// simulating a process crash.
func (n *MemNetwork) CrashHost(host string) {
	n.mu.Lock()
	var toReset []*memConn
	for _, c := range n.conns[host] {
		toReset = append(toReset, c, c.peer)
	}
	delete(n.conns, host)
	if l, ok := n.listeners[host]; ok {
		delete(n.listeners, host)
		l.closeLocked()
	}
	n.mu.Unlock()
	for _, c := range toReset {
		c.reset()
	}
}

func (n *MemNetwork) dropWrite(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blackholed[[2]string{from, to}] || n.partitioned[[2]string{from, to}]
}

func (n *MemNetwork) removeListener(addr string, l *memListener) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners[addr] == l {
		delete(n.listeners, addr)
	}
}

type memListener struct {
	net     *MemNetwork
	addr    string
	backlog chan *memConn

	closeOnce sync.Once
	done      chan struct{}
	doneInit  sync.Once
}

func (l *memListener) closed() chan struct{} {
	l.doneInit.Do(func() { l.done = make(chan struct{}) })
	return l.done
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed():
		return nil, ErrListenerClose
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.net.removeListener(l.addr, l)
	l.closeLocked()
	return nil
}

func (l *memListener) closeLocked() {
	l.closeOnce.Do(func() { close(l.closed()) })
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type chunk struct {
	data []byte
	at   time.Time
}

// memConn is one direction-pair endpoint of an in-memory connection.
type memConn struct {
	net        *MemNetwork
	localHost  string
	remoteHost string
	peer       *memConn

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []chunk
	current      []byte
	lastDeliver  time.Time
	closed       bool
	resetErr     bool
	readDeadline time.Time
}

func newMemConn(n *MemNetwork, local, remote string) *memConn {
	c := &memConn{net: n, localHost: local, remoteHost: remote}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Write implements net.Conn: the payload is enqueued on the peer with a
// delivery time now+delay. Delivery times are forced monotonic per
// direction so the byte stream stays FIFO under jittery latency models.
func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	c.mu.Unlock()
	if c.net.dropWrite(c.localHost, c.remoteHost) {
		// Blackholed: pretend success, deliver nothing.
		return len(p), nil
	}
	delay := c.net.latencyDelay(c.localHost, c.remoteHost, len(p))
	buf := make([]byte, len(p))
	copy(buf, p)
	peer := c.peer
	peer.mu.Lock()
	if peer.closed {
		peer.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	at := time.Now().Add(delay)
	if at.Before(peer.lastDeliver) {
		at = peer.lastDeliver
	}
	peer.lastDeliver = at
	peer.queue = append(peer.queue, chunk{data: buf, at: at})
	peer.cond.Broadcast()
	peer.mu.Unlock()
	return len(p), nil
}

func (n *MemNetwork) latencyDelay(from, to string, size int) time.Duration {
	n.mu.Lock()
	m := n.latency
	n.mu.Unlock()
	return m.Delay(from, to, size)
}

// Read implements net.Conn.
func (c *memConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.current) == 0 && len(c.queue) > 0 {
			head := c.queue[0]
			now := time.Now()
			if !head.at.After(now) {
				c.current = head.data
				c.queue = c.queue[1:]
			} else if exceeded, werr := c.waitUntil(head.at); exceeded {
				return 0, werr
			} else {
				continue
			}
		}
		if len(c.current) > 0 {
			n := copy(p, c.current)
			c.current = c.current[n:]
			return n, nil
		}
		if c.closed {
			if c.resetErr {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, io.EOF
		}
		if exceeded, werr := c.waitUntil(time.Time{}); exceeded {
			return 0, werr
		}
	}
}

// waitUntil blocks until the condition variable fires, `until` passes
// (if non-zero), or the read deadline passes. It returns exceeded=true with
// a timeout error when the deadline has passed. Must hold c.mu.
func (c *memConn) waitUntil(until time.Time) (exceeded bool, err error) {
	deadline := c.readDeadline
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return true, os.ErrDeadlineExceeded
	}
	wake := until
	if wake.IsZero() || (!deadline.IsZero() && deadline.Before(wake)) {
		wake = deadline
	}
	if wake.IsZero() {
		c.cond.Wait()
		return false, nil
	}
	// Timed wait: spawn a timer that broadcasts, then wait once.
	d := time.Until(wake)
	if d <= 0 {
		// Delivery time already passed; loop around without waiting.
		if until.IsZero() {
			return true, os.ErrDeadlineExceeded
		}
		return false, nil
	}
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.cond.Wait()
	t.Stop()
	return false, nil
}

// Close implements net.Conn.
func (c *memConn) Close() error {
	c.closeWith(false)
	if p := c.peer; p != nil {
		p.closeWith(false)
	}
	return nil
}

// reset simulates an abortive close (connection reset by partition/crash).
func (c *memConn) reset() {
	c.closeWith(true)
}

func (c *memConn) closeWith(reset bool) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.resetErr = reset
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// LocalAddr implements net.Conn.
func (c *memConn) LocalAddr() net.Addr { return memAddr(c.localHost) }

// RemoteAddr implements net.Conn.
func (c *memConn) RemoteAddr() net.Addr { return memAddr(c.remoteHost) }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *memConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *memConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn; in-memory writes never block, so it
// is a no-op.
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }
