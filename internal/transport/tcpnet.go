package transport

import "net"

// TCPNetwork is the real-network implementation of Network, used by the
// cmd/curpd daemon and cmd/curpctl. Addresses are host:port strings.
type TCPNetwork struct{}

// Listen implements Network.
func (TCPNetwork) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Network. The from identity is not needed for TCP.
func (TCPNetwork) Dial(_, addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
