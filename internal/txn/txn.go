// Package txn is the coordinator state machine of cross-shard atomic
// transactions: Sinfonia-style mini-transactions committed by the CLIENT
// with two-phase commit over CURP shards, anchored in RIFL for exactly-once
// decisions (paper lineage: RIFL §"Implementing transactions with RIFL" /
// RAMCloud distributed transactions).
//
// A Txn buffers reads (recording the version each saw) and writes. Commit
// picks the cheapest safe protocol:
//
//   - Every key on ONE shard: the whole transaction becomes a single atomic
//     kv.OpTxnApply command through the normal CURP update engine — witness
//     recorded, speculative when it commutes with the master's unsynced
//     window, i.e. the 1-RTT fast path; no locks, no 2PC. (This is the
//     commutativity dividend: a transaction that provably commutes with
//     concurrent traffic needs no extra coordination round.)
//   - Keys on several shards: client-coordinated 2PC. Phase one sends
//     kv.OpTxnPrepare to each participant (validate read versions, lock the
//     keys, stash the writes, sync). If all vote commit, the decision is
//     made durable as a RIFL-tracked record on the transaction's HOME shard
//     (the shard owning the first buffered key) via the normal witness/
//     backup path, then distributed to participants with kv.OpTxnDecide.
//     Any abort vote, redirect, or resolver race aborts cleanly.
//
// Failure handling: a participant crash recovers locks and stashed writes
// from its backup log; a coordinator crash leaves orphaned locks that the
// participant masters resolve after a timeout by asking the home shard,
// which records abort-by-default when no decision exists — and because the
// decision slot is the transaction's RIFL completion record, a coordinator
// that wakes up late and retries its commit gets the abort back instead of
// committing. A live shard rebalance bounces in-flight phases with
// core.ErrKeyMoved: undecided transactions abort (or retry under the new
// ring) instead of wedging locks, and decision records migrate with their
// home key's range.
package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"curp/internal/core"
	"curp/internal/kv"
	"curp/internal/rifl"
	"curp/internal/witness"
)

// Backend is the deployment surface a transaction commits through: a
// single CURP partition (every key maps to shard 0) or a sharded routing
// client. Shard indices are stable for the lifetime of a routing snapshot;
// Refresh adopts newer routing after a redirect.
type Backend interface {
	// ShardOf maps a key to its owning shard under current routing.
	ShardOf(key []byte) int
	// Refresh adopts newer routing (after core.ErrKeyMoved); it reports
	// whether the routing changed.
	Refresh() bool
	// GetVersioned performs a linearizable read of key, returning the full
	// result including the object version (routed by key, redirect-safe).
	GetVersioned(ctx context.Context, key []byte) (*kv.Result, error)
	// Apply commits a single-shard transaction atomically through the CURP
	// update engine on shard. It must NOT re-route internally: a
	// core.ErrKeyMoved surfaces so the coordinator can regroup.
	Apply(ctx context.Context, shard int, t *kv.TxnCommand) (*kv.Result, error)
	// HomeInfo returns shard's master coordinates (ID and address); the
	// coordinator fills in the home key hash.
	HomeInfo(ctx context.Context, shard int) (kv.TxnHome, error)
	// MintTxnID allocates the transaction's RIFL ID from shard's session
	// (shard must be the home shard: the ID doubles as the decide RPC's
	// identity there).
	MintTxnID(shard int) rifl.RPCID
	// FinishTxnID releases the transaction ID once no server will ever
	// need its completion record again.
	FinishTxnID(shard int, id rifl.RPCID)
	// Prepare runs phase one on shard; the result's Found is the vote.
	Prepare(ctx context.Context, shard int, cmd *kv.Command) (*kv.Result, error)
	// Decide runs phase two on shard (apply or discard prepared writes).
	Decide(ctx context.Context, shard int, cmd *kv.Command) (*kv.Result, error)
	// DecideHome records the transaction's decision on the home shard and
	// returns the outcome that stuck (false when an orphan resolver
	// recorded an abort first).
	DecideHome(ctx context.Context, shard int, id rifl.RPCID, commit bool, homeHash uint64) (bool, error)
	// ForgetDecision prunes the transaction's decision record on the home
	// shard once every participant acknowledged the decide (decision-
	// record GC). Best-effort: a failure just leaves the record until
	// lease expiry reclaims it.
	ForgetDecision(ctx context.Context, shard int, id rifl.RPCID, homeHash uint64)
}

// OutcomeRecorder is an optional Backend extension: a backend that keeps
// client-side statistics implements it, and Commit reports every
// transaction's final outcome through it. orphan marks aborts that were
// decided by a server-side orphan resolver (the home shard recorded
// abort-by-default before the coordinator's commit decision arrived) —
// the client-observable signature of the presumed-abort recovery path.
type OutcomeRecorder interface {
	TxnCommitted()
	TxnAborted(orphan bool)
}

// Errors returned by Commit.
var (
	// ErrTxnAborted reports a transaction that did not commit: a read's
	// version moved, a write was illegal (e.g. incrementing a non-counter),
	// or an orphan resolver decided abort first. Nothing was applied; the
	// application may rebuild and retry the transaction.
	ErrTxnAborted = errors.New("curp: transaction aborted")
	// ErrTxnDone reports use of a transaction after Commit or Abort.
	ErrTxnDone = errors.New("curp: transaction already finished")
	// ErrTxnBusy marks a prepare that kept colliding with other
	// transactions' locks until its retries ran out. The coordinator
	// converts it into a clean abort (the classic lock-wait-timeout →
	// abort rule): nothing executed under the blocked prepare, so rolling
	// back the voted participants is always safe.
	ErrTxnBusy = errors.New("curp: transaction blocked by concurrent locks")
)

// commitBudget bounds how long Commit keeps retrying redirects (live
// rebalances) before giving up; the caller's context caps it sooner.
const commitBudget = 2 * time.Minute

// readEntry is one cached linearizable read: the version to revalidate at
// commit and the value for read-your-writes derivation.
type readEntry struct {
	version uint64
	value   []byte
	found   bool
}

// Txn is one buffered transaction. Reads go to the deployment immediately
// (recording versions); writes buffer locally until Commit. Not safe for
// concurrent use.
type Txn struct {
	b Backend

	mu     sync.Mutex
	done   bool
	writes []kv.TxnWrite        // buffered, in program order
	reads  map[string]readEntry // read-set: key → first observed state
	order  []string             // first-touch order of keys (home selection)
	seen   map[string]bool
	// orphanAbort marks that the final ErrTxnAborted came from an orphan
	// resolver's abort-by-default beating the coordinator's commit.
	orphanAbort bool
}

// New opens an empty transaction over b.
func New(b Backend) *Txn {
	return &Txn{b: b, reads: make(map[string]readEntry), seen: make(map[string]bool)}
}

func (t *Txn) touch(key []byte) {
	if !t.seen[string(key)] {
		t.seen[string(key)] = true
		t.order = append(t.order, string(key))
	}
}

// Get reads key within the transaction: the first read of a key fetches it
// linearizably and records its version for commit-time validation; later
// reads — and reads of keys the transaction wrote — reflect the buffered
// writes (read-your-writes).
func (t *Txn) Get(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil, false, ErrTxnDone
	}
	writes := t.writesFor(key)
	var val []byte
	var found bool
	// The underlying state is needed when nothing is buffered yet, or when
	// the first buffered write is an Increment (it applies over the base);
	// a leading Put or Delete fully determines the starting state.
	if len(writes) == 0 || writes[0].Op == kv.OpIncrement {
		base, err := t.readBase(ctx, key)
		if err != nil {
			return nil, false, err
		}
		val, found = base.value, base.found
	}
	for _, w := range writes {
		switch w.Op {
		case kv.OpPut:
			val, found = w.Value, true
		case kv.OpDelete:
			val, found = nil, false
		case kv.OpIncrement:
			var cur int64
			if found {
				n, perr := strconv.ParseInt(string(val), 10, 64)
				if perr != nil {
					return nil, false, kv.ErrNotCounter
				}
				cur = n
			}
			val, found = []byte(strconv.FormatInt(cur+w.Delta, 10)), true
		}
	}
	if !found {
		return nil, false, nil
	}
	return append([]byte(nil), val...), true, nil
}

// writesFor returns the buffered writes touching key, in program order.
func (t *Txn) writesFor(key []byte) []kv.TxnWrite {
	var out []kv.TxnWrite
	for _, w := range t.writes {
		if string(w.Key) == string(key) {
			out = append(out, w)
		}
	}
	return out
}

// readBase fetches (once) and caches the underlying state of key,
// recording it in the read set. Must hold t.mu.
func (t *Txn) readBase(ctx context.Context, key []byte) (readEntry, error) {
	if e, ok := t.reads[string(key)]; ok {
		return e, nil
	}
	res, err := t.b.GetVersioned(ctx, key)
	if err != nil {
		return readEntry{}, err
	}
	e := readEntry{version: res.Version, value: res.Value, found: res.Found}
	t.reads[string(key)] = e
	t.touch(key)
	return e, nil
}

// Put buffers a write of value under key.
func (t *Txn) Put(key, value []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(key)
	t.writes = append(t.writes, kv.TxnWrite{Op: kv.OpPut, Key: key, Value: value})
}

// Delete buffers a removal of key.
func (t *Txn) Delete(key []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(key)
	t.writes = append(t.writes, kv.TxnWrite{Op: kv.OpDelete, Key: key})
}

// Increment buffers adding delta to the counter at key. The new value is
// observable through Get before commit, and on the shard after.
func (t *Txn) Increment(key []byte, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(key)
	t.writes = append(t.writes, kv.TxnWrite{Op: kv.OpIncrement, Key: key, Delta: delta})
}

// Abort discards the transaction. It never fails: until Commit, all writes
// are buffered client-side and no shard holds any state for the
// transaction.
func (t *Txn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
}

// shardGroup is one participant's slice of the transaction.
type shardGroup struct {
	shard  int
	reads  []kv.TxnRead
	writes []kv.TxnWrite
}

// hashes returns the group's commutativity footprint. Decides carry it
// explicitly (their Txn payload has no key sets), so migration freezes
// bounce them and the master tracks the applied writes as unsynced.
func (g *shardGroup) hashes() []uint64 {
	hs := make([]uint64, 0, len(g.reads)+len(g.writes))
	for _, r := range g.reads {
		hs = append(hs, witness.KeyHash(r.Key))
	}
	for _, w := range g.writes {
		hs = append(hs, witness.KeyHash(w.Key))
	}
	return hs
}

// group splits the read and write sets by owning shard under current
// routing, preserving program order within each group.
func (t *Txn) group() []*shardGroup {
	byShard := make(map[int]*shardGroup)
	var order []*shardGroup
	get := func(s int) *shardGroup {
		g := byShard[s]
		if g == nil {
			g = &shardGroup{shard: s}
			byShard[s] = g
			order = append(order, g)
		}
		return g
	}
	for _, key := range t.order {
		if e, ok := t.reads[key]; ok {
			g := get(t.b.ShardOf([]byte(key)))
			g.reads = append(g.reads, kv.TxnRead{Key: []byte(key), Version: e.version})
		}
	}
	for _, w := range t.writes {
		g := get(t.b.ShardOf(w.Key))
		g.writes = append(g.writes, w)
	}
	return order
}

// Commit atomically validates every read and applies every buffered write.
// nil means the transaction committed and is durable (f-fault tolerant) on
// every touched shard. ErrTxnAborted means nothing was applied. Any other
// error after the decision point reports the commit as durable but not yet
// fully distributed (stragglers settle server-side).
func (t *Txn) Commit(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if len(t.writes) == 0 && len(t.reads) == 0 {
		return nil
	}
	err := t.commitLoop(ctx)
	if rec, ok := t.b.(OutcomeRecorder); ok {
		switch {
		case err == nil:
			rec.TxnCommitted()
		case errors.Is(err, ErrTxnAborted):
			rec.TxnAborted(t.orphanAbort)
		}
	}
	return err
}

// commitLoop runs the commit protocol, regrouping and retrying across
// live rebalances until the budget runs out.
func (t *Txn) commitLoop(ctx context.Context) error {
	deadline := time.Now().Add(commitBudget)
	for attempt := 0; ; attempt++ {
		groups := t.group()
		var err error
		if len(groups) == 1 {
			err = t.commitSingle(ctx, groups[0])
		} else {
			err = t.commitCross(ctx, groups)
		}
		if !errors.Is(err, core.ErrKeyMoved) {
			return err
		}
		// A live rebalance moved one of the transaction's ranges
		// mid-commit. Nothing committed (redirected phases never execute,
		// and prepared participants were aborted), so regroup under fresh
		// routing and run the protocol again.
		if time.Now().After(deadline) {
			return fmt.Errorf("curp: txn keys still moving after %v: %w", commitBudget, err)
		}
		if !t.b.Refresh() {
			if perr := core.PauseJittered(ctx, attempt, time.Millisecond, 50*time.Millisecond); perr != nil {
				return perr
			}
		}
	}
}

// commitSingle is the single-shard fast path: one atomic OpTxnApply
// through the normal CURP engine.
func (t *Txn) commitSingle(ctx context.Context, g *shardGroup) error {
	res, err := t.b.Apply(ctx, g.shard, &kv.TxnCommand{Reads: g.reads, Writes: g.writes})
	if err != nil {
		return err
	}
	if !res.Found {
		return ErrTxnAborted
	}
	return nil
}

// commitCross is the cross-shard 2PC path.
func (t *Txn) commitCross(ctx context.Context, groups []*shardGroup) error {
	// The home shard anchors the decision: the shard owning the first key
	// the transaction touched.
	homeKey := []byte(t.order[0])
	home := t.b.ShardOf(homeKey)
	homeHash := witness.KeyHash(homeKey)
	homeInfo, err := t.b.HomeInfo(ctx, home)
	if err != nil {
		return err
	}
	homeInfo.KeyHash = homeHash
	id := t.b.MintTxnID(home)

	// Phase one, all participants in parallel.
	type voteRes struct {
		g    *shardGroup
		vote bool
		err  error
	}
	votes := make(chan voteRes, len(groups))
	for _, g := range groups {
		go func(g *shardGroup) {
			cmd := &kv.Command{Op: kv.OpTxnPrepare, Txn: &kv.TxnCommand{
				ID:     id,
				Home:   homeInfo,
				Reads:  g.reads,
				Writes: g.writes,
			}}
			res, err := t.b.Prepare(ctx, g.shard, cmd)
			if err != nil {
				votes <- voteRes{g: g, err: err}
				return
			}
			votes <- voteRes{g: g, vote: res.Found}
		}(g)
	}
	var prepared []*shardGroup // voted commit: hold locks until a decision
	var unknown []*shardGroup  // errored: may or may not hold locks
	moved := false
	voteAbort := false
	var hardErr error
	for range groups {
		v := <-votes
		switch {
		case v.err == nil && v.vote:
			prepared = append(prepared, v.g)
		case v.err == nil:
			voteAbort = true
		case errors.Is(v.err, ErrTxnBusy):
			// Lock-wait timeout: the prepare never executed, so treat it
			// as an abort vote rather than an in-doubt failure.
			voteAbort = true
		case errors.Is(v.err, core.ErrKeyMoved):
			moved = true
		default:
			hardErr = v.err
			unknown = append(unknown, v.g)
		}
	}

	if voteAbort || moved || hardErr != nil {
		// No decision was (or ever will be) recorded under this ID, so
		// every prepared participant can be released directly; shards whose
		// prepare errored get a best-effort abort too (their prepare may
		// have landed without the reply). Stragglers fall to the masters'
		// lock-timeout resolution, which presumes abort — consistent with
		// this outcome by construction.
		t.distributeDecide(ctx, id, false, append(prepared, unknown...))
		t.b.FinishTxnID(home, id)
		switch {
		case voteAbort:
			return ErrTxnAborted
		case hardErr != nil:
			return fmt.Errorf("curp: txn prepare: %w", hardErr)
		default:
			return core.ErrKeyMoved
		}
	}

	// Phase two: make the commit decision durable on the home shard. The
	// decision RPC rides the normal update path under the transaction's own
	// RIFL ID; if an orphan resolver recorded an abort first, the saved
	// abort comes back and the transaction rolls back.
	committed, err := t.b.DecideHome(ctx, home, id, true, homeHash)
	if err != nil {
		if errors.Is(err, core.ErrKeyMoved) {
			// The home range moved before the decision landed: nothing is
			// recorded anywhere (redirected updates never execute and their
			// witness records are retracted), so abort cleanly and let the
			// caller's loop retry under fresh routing.
			t.distributeDecide(ctx, id, false, prepared)
			t.b.FinishTxnID(home, id)
			return core.ErrKeyMoved
		}
		// In doubt: the decide may or may not have landed. Participants
		// must NOT be aborted (the decision could be commit); their locks
		// settle through lock-timeout resolution against whatever the home
		// shard ends up holding. Keep the ID un-acked so the home record
		// stays live for resolvers.
		return fmt.Errorf("curp: txn decision outcome unknown: %w", err)
	}
	if !committed {
		// An orphan resolver recorded an abort first; the record exists at
		// the home, so once every prepared participant APPLIED the
		// rollback it is garbage too.
		settled, applied := t.distributeDecide(ctx, id, false, prepared)
		if settled && applied {
			t.b.ForgetDecision(ctx, home, id, homeHash)
		}
		t.b.FinishTxnID(home, id)
		t.orphanAbort = true
		return ErrTxnAborted
	}

	// Distribute the commit. The decision is durable, so the transaction
	// HAS committed regardless of what happens below; a participant we
	// cannot reach applies it later via lock-timeout resolution, and its
	// locked keys block conflicting reads until then (no one observes the
	// pre-commit state after this point).
	if settled, applied := t.distributeDecide(ctx, id, true, prepared); settled {
		// Every participant settled: no completion record for the ID is
		// needed anywhere anymore.
		t.b.FinishTxnID(home, id)
		if applied {
			// ...and every decide truly APPLIED (none bounced off a
			// migrating range), so the home's decision record has no
			// readers left — prune it instead of letting the decision
			// table grow until lease expiry. A bounced decide means the
			// participant's prepared state settles through migration's
			// force-resolution, which must still find the record; those
			// records fall to lease expiry instead.
			t.b.ForgetDecision(ctx, home, id, homeHash)
		}
	}
	return nil
}

// distributeDecide sends the decision to every listed participant in
// parallel. settled reports whether every participant either applied the
// decide or bounced it with core.ErrKeyMoved — a bounce is settled
// because the range's prepared transactions resolve through migration's
// own machinery (pre-export force-resolution, or replay at the new
// owner). applied is the STRICT outcome: every decide executed (no
// bounces) — the only condition under which the home's decision record
// has provably no readers left and may be garbage-collected; a bounced
// participant's pending force-resolution still needs to look it up.
func (t *Txn) distributeDecide(ctx context.Context, id rifl.RPCID, commit bool, groups []*shardGroup) (settled, applied bool) {
	if len(groups) == 0 {
		return true, true
	}
	type outcome struct{ settled, applied bool }
	done := make(chan outcome, len(groups))
	for _, g := range groups {
		go func(g *shardGroup) {
			cmd := &kv.Command{
				Op:     kv.OpTxnDecide,
				Txn:    &kv.TxnCommand{ID: id, Commit: commit},
				Hashes: g.hashes(),
			}
			_, err := t.b.Decide(ctx, g.shard, cmd)
			done <- outcome{
				settled: err == nil || errors.Is(err, core.ErrKeyMoved),
				applied: err == nil,
			}
		}(g)
	}
	settled, applied = true, true
	for range groups {
		o := <-done
		settled = settled && o.settled
		applied = applied && o.applied
	}
	return settled, applied
}
