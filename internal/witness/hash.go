package witness

// KeyHash computes the 64-bit key hash CURP uses for commutativity checks
// (paper §4.2 compares 64-bit hashes of primary keys instead of full keys).
// It is FNV-1a, chosen for speed and decent diffusion; collisions are safe
// for correctness (they can only cause spurious conflicts, never missed
// ones) and are vanishingly rare at witness occupancy scales.
func KeyHash(key []byte) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// KeyHashString is KeyHash for string keys, avoiding a copy.
func KeyHashString(key string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}
