package witness

import (
	"math/rand"

	"curp/internal/commute"
	"curp/internal/rifl"
)

// CollisionTrial fills a fresh witness of the given geometry with
// single-key records carrying uniformly random key hashes until a record is
// rejected because its set is full, and returns the number of records
// accepted before that first rejection. This is the simulation behind the
// paper's Figure 11 (§B.1): with 4096 slots, direct mapping collides after
// ≈80 insertions (a birthday bound), while 4-way associativity stretches
// that several-fold.
func CollisionTrial(slots, ways int, rng *rand.Rand) int {
	w := MustNew(1, Config{Slots: slots, Ways: ways, SlotBytes: 64, StaleGCThreshold: 3})
	count := 0
	for {
		kh := rng.Uint64()
		id := rifl.RPCID{Client: 1, Seq: rifl.Seq(count + 1)}
		res := w.Record(1, []uint64{kh}, id, []byte("x"), commute.ClassWrite)
		switch res {
		case Accepted:
			count++
		case RejectedConflict:
			// Random 64-bit hash repeated — astronomically unlikely, but
			// not a set-capacity collision; retry with a fresh key.
			continue
		default:
			return count
		}
	}
}

// ExpectedRecordsToCollision averages CollisionTrial over trials runs,
// reproducing one data point of Figure 11.
func ExpectedRecordsToCollision(slots, ways, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var sum int
	for i := 0; i < trials; i++ {
		sum += CollisionTrial(slots, ways, rng)
	}
	return float64(sum) / float64(trials)
}
