package witness

// This file defines the ring-position space shared by the consistent-hash
// router (internal/shard) and the migration machinery (internal/cluster):
// a key's ring position is Mix64(KeyHash(key)), and a migration moves the
// keys whose positions fall in a set of HashRange arcs. Both layers must
// agree on the mapping bit for bit, so it lives here next to KeyHash.

// Mix64 is the murmur3 64-bit finalizer. FNV-1a (KeyHash) mixes low bits
// well but gives the trailing bytes of sequential labels ("user:1",
// "user:2", vnode names) only one multiply of high-bit avalanche, which
// clusters ring positions badly; the finalizer restores uniform placement
// while keeping the key hash itself shared with the commutativity path.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// RingPoint returns key's position on the 64-bit ring circle.
func RingPoint(key []byte) uint64 { return Mix64(KeyHash(key)) }

// RingPointString is RingPoint for string keys, avoiding a copy.
func RingPointString(key string) uint64 { return Mix64(KeyHashString(key)) }

// HashRange is one arc (Lo, Hi] of the 64-bit ring circle, the unit of key
// migration. Lo == Hi is never produced (it would be ambiguous between the
// empty arc and the full circle); Lo > Hi denotes an arc wrapping past the
// top of the ring.
type HashRange struct {
	Lo, Hi uint64
}

// Contains reports whether ring position h lies in the arc.
func (r HashRange) Contains(h uint64) bool {
	if r.Lo < r.Hi {
		return r.Lo < h && h <= r.Hi
	}
	return h > r.Lo || h <= r.Hi
}

// ContainsKey reports whether key's ring position lies in the arc.
func (r HashRange) ContainsKey(key []byte) bool { return r.Contains(RingPoint(key)) }

// RangesContain reports whether any arc in ranges contains ring position h.
func RangesContain(ranges []HashRange, h uint64) bool {
	for _, r := range ranges {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// RangesContainHash reports whether any arc contains the ring position of a
// commutativity key hash (the KeyHash value requests carry).
func RangesContainHash(ranges []HashRange, keyHash uint64) bool {
	return RangesContain(ranges, Mix64(keyHash))
}

// MergeRanges appends the arcs in add that dst does not already hold
// (exact match), returning the extended slice. Migration bookkeeping is
// re-applied on retries and recoveries; merging keeps the lists — which
// hot read paths scan linearly — from growing with duplicates.
func MergeRanges(dst, add []HashRange) []HashRange {
	for _, r := range add {
		dup := false
		for _, have := range dst {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
		}
	}
	return dst
}

// RemoveRanges deletes the exactly-matching arcs from dst in place and
// returns the filtered slice.
func RemoveRanges(dst, remove []HashRange) []HashRange {
	keep := dst[:0]
	for _, have := range dst {
		dropped := false
		for _, r := range remove {
			if have == r {
				dropped = true
				break
			}
		}
		if !dropped {
			keep = append(keep, have)
		}
	}
	return keep
}
