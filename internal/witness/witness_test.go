package witness

import (
	"curp/internal/commute"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"curp/internal/rifl"
)

func testWitness(t *testing.T) *Witness {
	t.Helper()
	w, err := New(1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func id(c, s uint64) rifl.RPCID {
	return rifl.RPCID{Client: rifl.ClientID(c), Seq: rifl.Seq(s)}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Slots: 0, Ways: 4},
		{Slots: 10, Ways: 4}, // not a multiple
		{Slots: 16, Ways: 0},
		{Slots: -4, Ways: 4},
	} {
		if _, err := New(1, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// Defaults fill in.
	w, err := New(1, Config{Slots: 8, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.SlotBytes != 2048 || w.cfg.StaleGCThreshold != 3 {
		t.Fatalf("defaults not applied: %+v", w.cfg)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(1, Config{Slots: 3, Ways: 2})
}

func TestRecordAcceptAndConflict(t *testing.T) {
	w := testWitness(t)
	if res := w.Record(1, []uint64{100}, id(1, 1), []byte("x=1"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("first record = %v", res)
	}
	// Same key, different request: non-commutative → reject (paper example:
	// witness holding "x←1" cannot accept "x←5").
	if res := w.Record(1, []uint64{100}, id(1, 2), []byte("x=5"), commute.ClassWrite); res != RejectedConflict {
		t.Fatalf("conflicting record = %v, want RejectedConflict", res)
	}
	// Different key: commutative → accept.
	if res := w.Record(1, []uint64{200}, id(1, 3), []byte("y=2"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("commutative record = %v", res)
	}
	st := w.Stats()
	if st.Accepts != 2 || st.ConflictRejects != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestRecordWrongMaster(t *testing.T) {
	w := testWitness(t)
	if res := w.Record(2, []uint64{1}, id(1, 1), []byte("x"), commute.ClassWrite); res != RejectedWrongMaster {
		t.Fatalf("wrong master = %v", res)
	}
	if w.MasterID() != 1 {
		t.Fatalf("master = %d", w.MasterID())
	}
}

func TestRecordOversizedAndEmpty(t *testing.T) {
	w := MustNew(1, Config{Slots: 16, Ways: 4, SlotBytes: 8})
	if res := w.Record(1, []uint64{1}, id(1, 1), make([]byte, 9), commute.ClassWrite); res != RejectedFull {
		t.Fatalf("oversized = %v", res)
	}
	if res := w.Record(1, nil, id(1, 2), []byte("x"), commute.ClassWrite); res != RejectedFull {
		t.Fatalf("no keys = %v", res)
	}
}

func TestSetFullRejection(t *testing.T) {
	// 8 slots, 4-way → 2 sets. Fill one set with 4 distinct keys mapping to
	// it; the 5th must be RejectedFull.
	w := MustNew(1, Config{Slots: 8, Ways: 4})
	nSets := uint64(2)
	var inserted int
	kh := uint64(0)
	for inserted < 4 {
		kh += nSets // all map to set 0
		if res := w.Record(1, []uint64{kh}, id(1, kh), []byte("v"), commute.ClassWrite); !res.Ok() {
			t.Fatalf("fill %d = %v", inserted, res)
		}
		inserted++
	}
	kh += nSets
	if res := w.Record(1, []uint64{kh}, id(1, kh), []byte("v"), commute.ClassWrite); res != RejectedFull {
		t.Fatalf("full set = %v, want RejectedFull", res)
	}
	// The other set is untouched.
	if res := w.Record(1, []uint64{1}, id(2, 1), []byte("v"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("other set = %v", res)
	}
}

func TestMultiKeyRecord(t *testing.T) {
	w := testWitness(t)
	// A transaction touching 3 objects occupies 3 slots but is one request.
	keys := []uint64{10, 20, 30}
	if res := w.Record(1, keys, id(1, 1), []byte("txn"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("multi-key = %v", res)
	}
	if w.Len() != 1 {
		t.Fatalf("len = %d, want 1 (single request)", w.Len())
	}
	// Any overlap conflicts.
	if res := w.Record(1, []uint64{20}, id(1, 2), []byte("w"), commute.ClassWrite); res != RejectedConflict {
		t.Fatalf("overlap = %v", res)
	}
	// Recovery data deduplicates to one record with all keys.
	recs := w.GetRecoveryData()
	if len(recs) != 1 || len(recs[0].KeyHashes) != 3 || recs[0].ID != id(1, 1) {
		t.Fatalf("recovery data = %+v", recs)
	}
}

func TestMultiKeySameSetRollback(t *testing.T) {
	// Two keys of one request mapping to the same set need two free slots;
	// if only one is free the record must be rejected and fully rolled back.
	w := MustNew(1, Config{Slots: 4, Ways: 2}) // 2 sets of 2
	// Fill set 0 with one record: one slot left in set 0.
	if res := w.Record(1, []uint64{0}, id(1, 1), []byte("a"), commute.ClassWrite); !res.Ok() {
		t.Fatal(res)
	}
	// Request touching keys 2 and 4 — both map to set 0 (even numbers).
	if res := w.Record(1, []uint64{2, 4}, id(1, 2), []byte("b"), commute.ClassWrite); res != RejectedFull {
		t.Fatalf("same-set multi-key = %v, want RejectedFull", res)
	}
	// Rollback must leave the one free slot usable.
	if res := w.Record(1, []uint64{6}, id(1, 3), []byte("c"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("slot not rolled back: %v", res)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestMultiKeyBothFitSameSet(t *testing.T) {
	w := MustNew(1, Config{Slots: 4, Ways: 2})
	// Keys 2 and 4 both map to set 0, which has 2 free slots → accept.
	if res := w.Record(1, []uint64{2, 4}, id(1, 1), []byte("b"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("multi-key same set with space = %v", res)
	}
	// Set 0 now full.
	if res := w.Record(1, []uint64{6}, id(1, 2), []byte("c"), commute.ClassWrite); res != RejectedFull {
		t.Fatalf("set should be full: %v", res)
	}
}

func TestGC(t *testing.T) {
	w := testWitness(t)
	w.Record(1, []uint64{1}, id(1, 1), []byte("a"), commute.ClassWrite)
	w.Record(1, []uint64{2}, id(1, 2), []byte("b"), commute.ClassWrite)
	w.Record(1, []uint64{3, 4}, id(1, 3), []byte("c"), commute.ClassWrite)
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	// GC one single-key record and the multi-key record (all pairs).
	stale := w.GC([]GCKey{
		{KeyHash: 1, ID: id(1, 1)},
		{KeyHash: 3, ID: id(1, 3)},
		{KeyHash: 4, ID: id(1, 3)},
	})
	if len(stale) != 0 {
		t.Fatalf("stale = %v", stale)
	}
	if w.Len() != 1 {
		t.Fatalf("len after gc = %d, want 1", w.Len())
	}
	// The freed keys are usable again.
	if res := w.Record(1, []uint64{1}, id(9, 1), []byte("a2"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("key 1 after gc = %v", res)
	}
	// GC of unknown pairs is ignored (record RPC might have been rejected).
	w.GC([]GCKey{{KeyHash: 99, ID: id(9, 9)}})
}

func TestGCWrongIDLeavesRecord(t *testing.T) {
	w := testWitness(t)
	w.Record(1, []uint64{5}, id(1, 1), []byte("v"), commute.ClassWrite)
	w.GC([]GCKey{{KeyHash: 5, ID: id(1, 99)}}) // ID mismatch
	if w.Len() != 1 {
		t.Fatal("gc with mismatched id dropped the record")
	}
}

func TestStaleGarbageDetection(t *testing.T) {
	// A record that survives ≥3 GC passes is reported as suspected
	// uncollected garbage in GC responses, and conflict rejections against
	// it are counted (paper §4.5).
	w := testWitness(t)
	w.Record(1, []uint64{42}, id(1, 1), []byte("orphan"), commute.ClassWrite)
	var stale []Record
	for i := 0; i < 3; i++ {
		stale = w.GC(nil)
	}
	if len(stale) != 1 || stale[0].ID != id(1, 1) {
		t.Fatalf("stale after 3 passes = %+v", stale)
	}
	// A conflicting record against the stale entry bumps StaleSuspicions.
	if res := w.Record(1, []uint64{42}, id(2, 1), []byte("new"), commute.ClassWrite); res != RejectedConflict {
		t.Fatalf("conflict = %v", res)
	}
	if st := w.Stats(); st.StaleSuspicions != 1 {
		t.Fatalf("stale suspicions = %d", st.StaleSuspicions)
	}
	// After the master retries and GCs it, the key frees up.
	w.GC([]GCKey{{KeyHash: 42, ID: id(1, 1)}})
	if res := w.Record(1, []uint64{42}, id(2, 2), []byte("new"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("after stale collection = %v", res)
	}
}

func TestRecoveryModeFreezes(t *testing.T) {
	w := testWitness(t)
	w.Record(1, []uint64{1}, id(1, 1), []byte("a"), commute.ClassWrite)
	if w.InRecovery() {
		t.Fatal("fresh witness in recovery")
	}
	recs := w.GetRecoveryData()
	if len(recs) != 1 || string(recs[0].Request) != "a" {
		t.Fatalf("recovery data = %+v", recs)
	}
	if !w.InRecovery() {
		t.Fatal("witness should be frozen")
	}
	// All mutations rejected.
	if res := w.Record(1, []uint64{2}, id(1, 2), []byte("b"), commute.ClassWrite); res != RejectedRecovery {
		t.Fatalf("record in recovery = %v", res)
	}
	if got := w.GC([]GCKey{{KeyHash: 1, ID: id(1, 1)}}); got != nil {
		t.Fatalf("gc in recovery = %v", got)
	}
	if w.Len() != 1 {
		t.Fatal("recovery mutated contents")
	}
	// Repeated GetRecoveryData returns the same data.
	recs2 := w.GetRecoveryData()
	if len(recs2) != 1 || recs2[0].ID != recs[0].ID {
		t.Fatalf("second recovery data = %+v", recs2)
	}
}

func TestEndResets(t *testing.T) {
	w := testWitness(t)
	w.Record(1, []uint64{1}, id(1, 1), []byte("a"), commute.ClassWrite)
	w.GetRecoveryData()
	w.End()
	if w.InRecovery() || w.Len() != 0 {
		t.Fatal("End did not reset witness")
	}
	if res := w.Record(1, []uint64{1}, id(1, 2), []byte("b"), commute.ClassWrite); !res.Ok() {
		t.Fatalf("record after End = %v", res)
	}
}

func TestCommutativityInvariant(t *testing.T) {
	// Property (paper §3.2.2): a witness never holds two records with a
	// common key hash. Drive it with random records and GCs and verify.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := MustNew(1, Config{Slots: 64, Ways: 4, SlotBytes: 64})
		live := map[rifl.RPCID][]uint64{}
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0, 1: // record
				nk := rng.Intn(3) + 1
				keys := make([]uint64, 0, nk)
				seen := map[uint64]bool{}
				for len(keys) < nk {
					k := uint64(rng.Intn(40))
					if !seen[k] {
						seen[k] = true
						keys = append(keys, k)
					}
				}
				rid := id(1, uint64(i+1))
				if w.Record(1, keys, rid, []byte("v"), commute.ClassWrite).Ok() {
					live[rid] = keys
				}
			case 2: // gc a random live record
				for rid, keys := range live {
					var gcs []GCKey
					for _, k := range keys {
						gcs = append(gcs, GCKey{KeyHash: k, ID: rid})
					}
					w.GC(gcs)
					delete(live, rid)
					break
				}
			}
			// Invariant: stored records are pairwise key-disjoint.
			used := map[uint64]rifl.RPCID{}
			for rid, keys := range live {
				for _, k := range keys {
					if other, dup := used[k]; dup && other != rid {
						return false
					}
					used[k] = rid
				}
			}
			// And the witness agrees with our model of what is stored.
			if w.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPerSlotClassInvariant extends the §3.2.2 property to the class-aware
// conflict rule: a witness may hold two live records sharing a key hash
// ONLY when their classes commute (same non-write class), and it must
// never report a conflict when they do. Random records across all five
// classes, interleaved with random GCs, are checked against a model of
// the live set after every step.
func TestPerSlotClassInvariant(t *testing.T) {
	classes := []commute.Class{
		commute.ClassWrite, commute.ClassCounter,
		commute.ClassSetAdd, commute.ClassSetRemove, commute.ClassBucket,
	}
	type rec struct {
		keys  []uint64
		class commute.Class
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := MustNew(1, Config{Slots: 64, Ways: 4, SlotBytes: 64})
		live := map[rifl.RPCID]rec{}
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0, 1: // record with a random class
				nk := rng.Intn(3) + 1
				keys := make([]uint64, 0, nk)
				seen := map[uint64]bool{}
				for len(keys) < nk {
					k := uint64(rng.Intn(40))
					if !seen[k] {
						seen[k] = true
						keys = append(keys, k)
					}
				}
				cls := classes[rng.Intn(len(classes))]
				conflict := false
				for _, r := range live {
					for _, k := range r.keys {
						for _, k2 := range keys {
							if k == k2 && !commute.Commutes(r.class, cls) {
								conflict = true
							}
						}
					}
				}
				switch res := w.Record(1, keys, id(1, uint64(i+1)), []byte("v"), cls); {
				case res.Ok():
					if conflict {
						return false // accepted over a non-commuting record
					}
					live[id(1, uint64(i+1))] = rec{keys, cls}
				case res == RejectedConflict:
					if !conflict {
						return false // spurious conflict between commuting records
					}
				case res == RejectedFull:
					// Capacity, not correctness; the model skips it too.
				default:
					return false
				}
			case 2: // gc a random live record
				for rid, r := range live {
					var gcs []GCKey
					for _, k := range r.keys {
						gcs = append(gcs, GCKey{KeyHash: k, ID: rid})
					}
					w.GC(gcs)
					delete(live, rid)
					break
				}
			}
			if w.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecoveryDataMatchesAccepted(t *testing.T) {
	// Property: GetRecoveryData returns exactly the accepted-and-not-GCed
	// requests, each exactly once.
	rng := rand.New(rand.NewSource(11))
	w := testWitness(t)
	expect := map[rifl.RPCID]bool{}
	for i := 0; i < 500; i++ {
		rid := id(uint64(rng.Intn(5)+1), uint64(i+1))
		keys := []uint64{rng.Uint64(), rng.Uint64()}
		if w.Record(1, keys, rid, []byte("v"), commute.ClassWrite).Ok() {
			expect[rid] = true
			if rng.Intn(4) == 0 {
				w.GC([]GCKey{{keys[0], rid}, {keys[1], rid}})
				delete(expect, rid)
			}
		}
	}
	recs := w.GetRecoveryData()
	if len(recs) != len(expect) {
		t.Fatalf("recovery count = %d, want %d", len(recs), len(expect))
	}
	for _, r := range recs {
		if !expect[r.ID] {
			t.Fatalf("unexpected record %v", r.ID)
		}
		delete(expect, r.ID)
	}
}

func TestConcurrentRecords(t *testing.T) {
	w := testWitness(t)
	var wg sync.WaitGroup
	accepted := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				rid := id(uint64(g+1), uint64(i+1))
				if w.Record(1, []uint64{rng.Uint64()}, rid, []byte("v"), commute.ClassWrite).Ok() {
					accepted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, a := range accepted {
		total += a
	}
	if w.Len() != total {
		t.Fatalf("len = %d, accepted = %d", w.Len(), total)
	}
}

func TestMemoryFootprint(t *testing.T) {
	w := testWitness(t)
	mb := float64(w.MemoryFootprint()) / (1 << 20)
	// Paper §5.2: ≈9MB per master-witness pair with 4096 × 2KB slots.
	if mb < 8 || mb > 10 {
		t.Fatalf("memory footprint = %.1f MB, want ≈9", mb)
	}
}

func TestKeyHash(t *testing.T) {
	if KeyHash([]byte("hello")) != KeyHashString("hello") {
		t.Fatal("byte and string hashes differ")
	}
	if KeyHash([]byte("a")) == KeyHash([]byte("b")) {
		t.Fatal("trivial collision")
	}
	if KeyHash(nil) != KeyHashString("") {
		t.Fatal("empty hash mismatch")
	}
	// Distribution sanity: hashes of sequential keys spread across sets.
	sets := map[uint64]int{}
	for i := 0; i < 4096; i++ {
		sets[KeyHashString(string(rune(i)))%1024]++
	}
	if len(sets) < 900 {
		t.Fatalf("poor hash spread: only %d/1024 sets hit", len(sets))
	}
}

func TestCollisionTrialShape(t *testing.T) {
	// Figure 11 shape: associativity increases expected records before
	// collision; direct-mapped 4096 slots collides around ~80 (birthday).
	direct := ExpectedRecordsToCollision(4096, 1, 200, 1)
	if direct < 50 || direct > 120 {
		t.Fatalf("direct-mapped 4096: %.1f, want ≈80", direct)
	}
	way2 := ExpectedRecordsToCollision(4096, 2, 100, 2)
	way4 := ExpectedRecordsToCollision(4096, 4, 100, 3)
	way8 := ExpectedRecordsToCollision(4096, 8, 50, 4)
	if !(direct < way2 && way2 < way4 && way4 < way8) {
		t.Fatalf("associativity ordering violated: %0.f %0.f %0.f %0.f", direct, way2, way4, way8)
	}
	// Larger caches help too.
	small := ExpectedRecordsToCollision(512, 4, 100, 5)
	if small >= way4 {
		t.Fatalf("smaller cache should collide earlier: %.0f vs %.0f", small, way4)
	}
}

func TestRecordResultString(t *testing.T) {
	for r, want := range map[RecordResult]string{
		Accepted:            "accepted",
		RejectedConflict:    "rejected-conflict",
		RejectedFull:        "rejected-full",
		RejectedWrongMaster: "rejected-wrong-master",
		RejectedRecovery:    "rejected-recovery",
		RecordResult(99):    "rejected-unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

func BenchmarkWitnessRecordGC(b *testing.B) {
	// The §5.2 witness-capacity microbenchmark: record with an occasional
	// batched GC (1 per 50 records), mirroring the paper's measurement of
	// 1.27M record RPCs/s on one thread.
	w := MustNew(1, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 0, 50)
	var gcs []GCKey
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kh := rng.Uint64()
		rid := id(1, uint64(i+1))
		w.Record(1, []uint64{kh}, rid, nil, commute.ClassWrite)
		keys = append(keys, kh)
		gcs = append(gcs, GCKey{KeyHash: kh, ID: rid})
		if len(keys) == 50 {
			w.GC(gcs)
			keys = keys[:0]
			gcs = gcs[:0]
		}
	}
}

func BenchmarkKeyHash(b *testing.B) {
	key := []byte("key000000000000000000000000042")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KeyHash(key)
	}
}

// TestRecordBatchPerRecordOutcomes: a batch is accepted/rejected per
// record, aligned with the input, and behaves exactly like sequential
// records — including a same-key pair inside one batch (one accept, one
// conflict), wrong-master and recovery-mode rejections.
func TestRecordBatchPerRecordOutcomes(t *testing.T) {
	w := MustNew(1, Config{Slots: 8, Ways: 2, SlotBytes: 64})
	recs := []Record{
		{KeyHashes: []uint64{10}, ID: id(1, 1), Request: []byte("a")},
		{KeyHashes: []uint64{11}, ID: id(1, 2), Request: []byte("b")},
		{KeyHashes: []uint64{10}, ID: id(1, 3), Request: []byte("c")}, // conflicts with rec 0
	}
	results := w.RecordBatch(1, recs)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0] != Accepted || results[1] != Accepted {
		t.Fatalf("disjoint records = %v %v", results[0], results[1])
	}
	if results[2] != RejectedConflict {
		t.Fatalf("same-key record = %v, want conflict", results[2])
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}

	// Wrong master rejects per record.
	for i, res := range w.RecordBatch(9, recs[:2]) {
		if res != RejectedWrongMaster {
			t.Fatalf("record %d = %v", i, res)
		}
	}

	// Recovery mode rejects everything.
	w.GetRecoveryData()
	for i, res := range w.RecordBatch(1, []Record{{KeyHashes: []uint64{99}, ID: id(1, 9), Request: []byte("z")}}) {
		if res != RejectedRecovery {
			t.Fatalf("record %d = %v", i, res)
		}
	}
}
