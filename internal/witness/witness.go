// Package witness implements CURP's witness component (paper §3.2.2, §4.1,
// §4.2): lightweight temporary storage that makes client requests durable
// without ordering them. A witness accepts a record only if it commutes with
// every record it currently holds, which for NoSQL operations reduces to
// "no existing record touches any of the same keys" — checked with 64-bit
// key hashes.
//
// Storage is a set-associative cache: a record's key hash selects a set of
// slots; the record occupies any free slot in the set. Associativity
// trades a slightly more expensive lookup for far fewer false conflicts
// than direct mapping (paper §B.1 / Figure 11); this package also exposes
// the collision simulation that regenerates Figure 11.
//
// A witness has two modes. In normal mode it serves Record and GC. The
// first GetRecoveryData call irreversibly moves it to recovery mode, where
// all mutations are rejected, so clients cannot complete operations by
// recording to a witness whose contents have already been replayed.
package witness

import (
	"errors"
	"sync"

	"curp/internal/commute"
	"curp/internal/rifl"
)

// RecordResult is the witness's response to a record RPC.
type RecordResult int

const (
	// Accepted: the request is durably saved.
	Accepted RecordResult = iota
	// RejectedConflict: a non-commutative request (same key hash) is
	// already stored; the client must sync through the master.
	RejectedConflict
	// RejectedFull: no free slot in one of the key's sets.
	RejectedFull
	// RejectedWrongMaster: the record targets a master this witness does
	// not serve (stale client configuration).
	RejectedWrongMaster
	// RejectedRecovery: the witness is in recovery mode and immutable.
	RejectedRecovery
)

// String names the result.
func (r RecordResult) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case RejectedConflict:
		return "rejected-conflict"
	case RejectedFull:
		return "rejected-full"
	case RejectedWrongMaster:
		return "rejected-wrong-master"
	case RejectedRecovery:
		return "rejected-recovery"
	}
	return "rejected-unknown"
}

// Accepted reports whether the record was saved.
func (r RecordResult) Ok() bool { return r == Accepted }

// Record is a saved client request.
type Record struct {
	// KeyHashes identifies the objects the request mutates.
	KeyHashes []uint64
	// ID is the request's RIFL RPC ID.
	ID rifl.RPCID
	// Request is the opaque serialized client request, replayed verbatim
	// during recovery.
	Request []byte
	// Class is the request's commutativity class: two same-key records of
	// one non-write class commute and may both be accepted (see
	// internal/commute). ClassWrite reproduces the paper's key-granular
	// rule.
	Class commute.Class
}

// GCKey identifies one (keyHash, rpcID) pair to drop; a gc RPC carries one
// pair per object a synced request mutated (paper §4.5).
type GCKey struct {
	KeyHash uint64
	ID      rifl.RPCID
}

// GCKeys builds the gc pairs for one request: every key hash it touched,
// under its RPC ID. Used by masters collecting synced requests and by
// clients retracting the records of an abandoned RPC.
func GCKeys(keyHashes []uint64, id rifl.RPCID) []GCKey {
	keys := make([]GCKey, len(keyHashes))
	for i, kh := range keyHashes {
		keys[i] = GCKey{KeyHash: kh, ID: id}
	}
	return keys
}

// Config sizes a witness.
type Config struct {
	// Slots is the total number of request slots (paper default: 4096).
	Slots int
	// Ways is the set associativity (paper default: 4).
	Ways int
	// SlotBytes is the capacity of one slot (paper: 2KB); requests larger
	// than this are rejected as full.
	SlotBytes int
	// StaleGCThreshold is the number of GC passes a record survives before
	// the witness reports it as suspected uncollected garbage when it
	// causes a rejection (paper §4.5 suggests 3).
	StaleGCThreshold int
}

// DefaultConfig matches the paper's RAMCloud implementation: 4096 slots,
// 4-way associative, 2KB per slot, stale after 3 GC passes.
func DefaultConfig() Config {
	return Config{Slots: 4096, Ways: 4, SlotBytes: 2048, StaleGCThreshold: 3}
}

type slot struct {
	occupied bool
	keyHash  uint64
	id       rifl.RPCID
	request  []byte
	multiKey []uint64      // all key hashes of the request (shared across copies)
	gcEpoch  uint64        // value of w.gcPasses when the record was written
	class    commute.Class // commutativity class of the stored request
}

// Stats counts witness activity for the evaluation harness.
type Stats struct {
	Accepts          uint64
	ConflictRejects  uint64
	FullRejects      uint64
	WrongMaster      uint64
	RecoveryRejects  uint64
	GCDrops          uint64
	StaleSuspicions  uint64
	RecordedRequests uint64 // distinct requests currently stored
}

// Witness is one witness instance serving a single master. Safe for
// concurrent use.
type Witness struct {
	mu       sync.Mutex
	cfg      Config
	masterID uint64
	sets     []slot // nSets × ways, flattened
	nSets    int
	recovery bool
	gcPasses uint64
	stats    Stats
}

// ErrBadConfig reports an invalid witness configuration.
var ErrBadConfig = errors.New("witness: slots must be a positive multiple of ways")

// New creates a witness for the given master (the start RPC of Figure 4).
func New(masterID uint64, cfg Config) (*Witness, error) {
	if cfg.Slots <= 0 || cfg.Ways <= 0 || cfg.Slots%cfg.Ways != 0 {
		return nil, ErrBadConfig
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = 2048
	}
	if cfg.StaleGCThreshold <= 0 {
		cfg.StaleGCThreshold = 3
	}
	return &Witness{
		cfg:      cfg,
		masterID: masterID,
		sets:     make([]slot, cfg.Slots),
		nSets:    cfg.Slots / cfg.Ways,
	}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(masterID uint64, cfg Config) *Witness {
	w, err := New(masterID, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// MasterID returns the master this witness serves.
func (w *Witness) MasterID() uint64 { return w.masterID }

// setIndex returns the first slot index of the set for a key hash.
func (w *Witness) setIndex(keyHash uint64) int {
	return int(keyHash%uint64(w.nSets)) * w.cfg.Ways
}

// Record saves a client request mutating the given key hashes (the record
// RPC of Figure 4). The request is accepted only if every key's set has a
// free slot and every existing same-key record commutes with it — distinct
// keys always commute; equal keys commute exactly when
// commute.Commutes(stored class, class) holds.
func (w *Witness) Record(masterID uint64, keyHashes []uint64, id rifl.RPCID, request []byte, class commute.Class) RecordResult {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recordLocked(masterID, keyHashes, id, request, class)
}

// RecordBatch saves several client requests under one lock acquisition —
// the server side of a pipelined client's coalesced record RPC. Each
// request is accepted or rejected independently, exactly as if recorded
// one at a time in order: results[i] is the outcome for recs[i], and an
// accepted earlier record participates in the commutativity check of later
// records in the same batch (two same-key requests in one batch yield one
// accept and one conflict, never two accepts).
func (w *Witness) RecordBatch(masterID uint64, recs []Record) []RecordResult {
	out := make([]RecordResult, len(recs))
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, r := range recs {
		out[i] = w.recordLocked(masterID, r.KeyHashes, r.ID, r.Request, r.Class)
	}
	return out
}

// recordLocked is Record's body; the caller holds w.mu.
func (w *Witness) recordLocked(masterID uint64, keyHashes []uint64, id rifl.RPCID, request []byte, class commute.Class) RecordResult {
	if w.recovery {
		w.stats.RecoveryRejects++
		return RejectedRecovery
	}
	if masterID != w.masterID {
		w.stats.WrongMaster++
		return RejectedWrongMaster
	}
	if len(keyHashes) == 0 || len(request) > w.cfg.SlotBytes {
		w.stats.FullRejects++
		return RejectedFull
	}
	// Pass 1: every key must commute with stored records and have a free
	// slot (paper §4.2: both conditions checked for every affected object
	// before any write).
	free := make([]int, len(keyHashes))
	for i, kh := range keyHashes {
		base := w.setIndex(kh)
		freeIdx := -1
		for j := 0; j < w.cfg.Ways; j++ {
			s := &w.sets[base+j]
			if s.occupied {
				// Same key: conflict unless both records belong to one
				// commutative class. Commutative same-key records coexist
				// (each claims its own slot), so a hot counter's set fills
				// toward Ways concurrent increments before rejecting full.
				if s.keyHash == kh && !commute.Commutes(s.class, class) {
					w.noteConflict(s)
					return RejectedConflict
				}
				continue
			}
			if freeIdx < 0 {
				freeIdx = base + j
			}
		}
		// A multi-key request claims one slot per key; two keys of the same
		// request may map to the same set, so a set needs as many free
		// slots as the keys mapping to it. Recheck below handles that by
		// claiming slots one key at a time in pass 2; here we only verify
		// at least one slot is free.
		if freeIdx < 0 {
			w.stats.FullRejects++
			return RejectedFull
		}
		free[i] = freeIdx
	}
	// Pass 2: claim slots. Because pass 1 reserved only one slot per key,
	// re-scan for keys whose reserved slot was taken by an earlier key of
	// this same request.
	claimed := make([]int, 0, len(keyHashes))
	for i, kh := range keyHashes {
		idx := free[i]
		if w.sets[idx].occupied {
			idx = -1
			base := w.setIndex(kh)
			for j := 0; j < w.cfg.Ways; j++ {
				if !w.sets[base+j].occupied {
					idx = base + j
					break
				}
			}
			if idx < 0 {
				// Roll back slots claimed for earlier keys of this request.
				for _, c := range claimed {
					w.sets[c] = slot{}
				}
				w.stats.FullRejects++
				return RejectedFull
			}
		}
		w.sets[idx] = slot{
			occupied: true,
			keyHash:  kh,
			id:       id,
			request:  request,
			multiKey: keyHashes,
			gcEpoch:  w.gcPasses,
			class:    class,
		}
		claimed = append(claimed, idx)
	}
	w.stats.Accepts++
	w.stats.RecordedRequests++
	return Accepted
}

// noteConflict records a conflict rejection and flags the blocking record
// as suspected uncollected garbage if it has survived several GC passes.
func (w *Witness) noteConflict(s *slot) {
	w.stats.ConflictRejects++
	if w.gcPasses-s.gcEpoch >= uint64(w.cfg.StaleGCThreshold) {
		w.stats.StaleSuspicions++
	}
}

// GC drops the records named by keys (the gc RPC of Figure 4). Pairs that
// are not found are ignored — their record RPCs may have been rejected. It
// returns records that have survived at least StaleGCThreshold GC passes:
// suspected uncollected garbage the master should retry and re-sync
// (paper §4.5).
func (w *Witness) GC(keys []GCKey) []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recovery {
		return nil
	}
	w.gcPasses++
	dropped := map[rifl.RPCID]bool{}
	for _, k := range keys {
		base := w.setIndex(k.KeyHash)
		for j := 0; j < w.cfg.Ways; j++ {
			s := &w.sets[base+j]
			if s.occupied && s.keyHash == k.KeyHash && s.id == k.ID {
				if !dropped[s.id] {
					dropped[s.id] = true
					w.stats.RecordedRequests--
				}
				w.stats.GCDrops++
				*s = slot{}
			}
		}
	}
	// Report stale survivors.
	var stale []Record
	seen := map[rifl.RPCID]bool{}
	for i := range w.sets {
		s := &w.sets[i]
		if s.occupied && w.gcPasses-s.gcEpoch >= uint64(w.cfg.StaleGCThreshold) && !seen[s.id] {
			seen[s.id] = true
			stale = append(stale, Record{KeyHashes: s.multiKey, ID: s.id, Request: s.request, Class: s.class})
		}
	}
	return stale
}

// DropRecords removes the exact (keyHash, id) pairs — a client retracting
// the records of an RPC it is abandoning. Unlike GC this is not a
// collection pass: it does not advance the staleness clock (a bounce storm
// must not age unrelated records into spurious §4.5 suspicions), and it
// FAILS in recovery mode — the records were already surfaced to a
// recovering master and can no longer be retracted, so the caller must
// not abandon the RPC ID.
func (w *Witness) DropRecords(keys []GCKey) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recovery {
		return errors.New("witness: in recovery; records already surfaced and cannot be retracted")
	}
	dropped := map[rifl.RPCID]bool{}
	for _, k := range keys {
		base := w.setIndex(k.KeyHash)
		for j := 0; j < w.cfg.Ways; j++ {
			s := &w.sets[base+j]
			if s.occupied && s.keyHash == k.KeyHash && s.id == k.ID {
				if !dropped[s.id] {
					dropped[s.id] = true
					w.stats.RecordedRequests--
				}
				w.stats.GCDrops++
				*s = slot{}
			}
		}
	}
	return nil
}

// GetRecoveryData irreversibly switches the witness to recovery mode and
// returns every stored request exactly once (multi-key requests are
// deduplicated by RPC ID). All requests in a witness are mutually
// commutative, so the recovering master may replay them in any order.
func (w *Witness) GetRecoveryData() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recovery = true
	seen := map[rifl.RPCID]bool{}
	var out []Record
	for i := range w.sets {
		s := &w.sets[i]
		if s.occupied && !seen[s.id] {
			seen[s.id] = true
			out = append(out, Record{KeyHashes: s.multiKey, ID: s.id, Request: s.request, Class: s.class})
		}
	}
	return out
}

// Commutes reports whether an operation touching keyHashes commutes with
// every record currently stored — the probe clients use to decide whether a
// nearby backup's value is safe to read (paper §A.1). A witness in recovery
// mode answers false: its contents are being replayed and reads must go to
// the master.
func (w *Witness) Commutes(keyHashes []uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recovery {
		return false
	}
	for _, kh := range keyHashes {
		base := w.setIndex(kh)
		for j := 0; j < w.cfg.Ways; j++ {
			s := &w.sets[base+j]
			if s.occupied && s.keyHash == kh {
				return false
			}
		}
	}
	return true
}

// SnapshotRecords returns the distinct requests currently stored without
// changing the witness's mode (unlike GetRecoveryData). Masters co-hosted
// with their witnesses use it to enumerate collectable records.
func (w *Witness) SnapshotRecords() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := map[rifl.RPCID]bool{}
	var out []Record
	for i := range w.sets {
		s := &w.sets[i]
		if s.occupied && !seen[s.id] {
			seen[s.id] = true
			out = append(out, Record{KeyHashes: s.multiKey, ID: s.id, Request: s.request, Class: s.class})
		}
	}
	return out
}

// InRecovery reports whether the witness has been frozen for recovery.
func (w *Witness) InRecovery() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovery
}

// End decommissions the witness (the end RPC of Figure 4), clearing all
// state so the server can host a witness for a different master.
func (w *Witness) End() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.sets {
		w.sets[i] = slot{}
	}
	w.recovery = false
	w.stats = Stats{}
	w.gcPasses = 0
}

// Stats returns a snapshot of activity counters.
func (w *Witness) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Len returns the number of distinct requests currently stored.
func (w *Witness) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int(w.stats.RecordedRequests)
}

// MemoryFootprint returns the approximate resident bytes of this witness:
// slot payload capacity plus per-slot metadata. With the default 4096×2KB
// configuration this is ≈9MB, the paper's §5.2 figure.
func (w *Witness) MemoryFootprint() int64 {
	const perSlotMetadata = 48 // hash, id, epoch, header
	return int64(w.cfg.Slots) * int64(w.cfg.SlotBytes+perSlotMetadata)
}
