package health

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func beat(role Role, addr string, id uint64) *Beat {
	return &Beat{Role: role, Addr: addr, MasterID: id}
}

func TestBeatRoundTrip(t *testing.T) {
	in := &Beat{
		Role: RoleMaster, Addr: "m1", MasterID: 7, Epoch: 3,
		HeadLSN: 100, Unsynced: 12, WitnessListVersion: 4, FlushThreshold: 17,
	}
	out, err := DecodeBeat(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeBeat([]byte{1, 2}); err == nil {
		t.Fatal("truncated beat decoded")
	}
}

func TestDetectorDeadline(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable()
	tb.SetClock(clk.now)
	cfg := Config{Interval: 10 * time.Millisecond}.WithDefaults()
	if cfg.FailAfter != 80*time.Millisecond {
		t.Fatalf("default FailAfter = %v", cfg.FailAfter)
	}

	tb.Register(RoleMaster, "m1", 1)
	tb.Register(RoleWitness, "w1", 1)

	// A freshly registered node gets a full deadline of grace.
	clk.advance(cfg.FailAfter - time.Millisecond)
	if dead := tb.Dead(cfg); len(dead) != 0 {
		t.Fatalf("dead before deadline: %v", dead)
	}

	// m1 beats, w1 stays silent past the deadline.
	tb.Observe(beat(RoleMaster, "m1", 1))
	clk.advance(2 * time.Millisecond)
	dead := tb.Dead(cfg)
	if len(dead) != 1 || dead[0].Addr != "w1" || dead[0].Role != RoleWitness {
		t.Fatalf("dead = %v, want w1", dead)
	}
	if tb.AllAlive(cfg) {
		t.Fatal("AllAlive with a dead witness")
	}
	if !tb.Alive("m1", cfg) || tb.Alive("w1", cfg) {
		t.Fatal("per-node liveness wrong")
	}

	// Deferral suppresses the report, then expires.
	tb.Defer("w1", clk.now().Add(50*time.Millisecond))
	if dead := tb.Dead(cfg); len(dead) != 0 {
		t.Fatalf("deferred node reported: %v", dead)
	}
	clk.advance(51 * time.Millisecond)
	if dead := tb.Dead(cfg); len(dead) != 1 {
		t.Fatalf("deferral did not expire: %v", dead)
	}

	// Replacement: forget + register restarts the clock.
	tb.Forget("w1")
	tb.Register(RoleWitness, "w2", 1)
	tb.Observe(beat(RoleMaster, "m1", 1))
	if dead := tb.Dead(cfg); len(dead) != 0 {
		t.Fatalf("dead after replacement: %v", dead)
	}

	// Beats from unregistered addresses are dropped.
	tb.Observe(beat(RoleWitness, "w1", 1))
	if tb.Alive("w1", cfg) {
		t.Fatal("unregistered straggler resurrected itself")
	}
}

// TestDetectorJitterTolerance: a node whose beats historically arrive
// slower than the configured cadence gets a stretched deadline instead of
// being declared dead on schedule.
func TestDetectorJitterTolerance(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable()
	tb.SetClock(clk.now)
	cfg := Config{Interval: 10 * time.Millisecond, FailAfter: 40 * time.Millisecond}

	tb.Register(RoleBackup, "b1", 1)
	// Beats every 30ms: EWMA converges near 30ms, so the adaptive
	// deadline (4× gap ≈ 120ms) exceeds the configured 40ms.
	for i := 0; i < 20; i++ {
		tb.Observe(beat(RoleBackup, "b1", 1))
		clk.advance(30 * time.Millisecond)
	}
	// 100ms of silence: past FailAfter, inside the stretched deadline.
	clk.advance(70 * time.Millisecond)
	if dead := tb.Dead(cfg); len(dead) != 0 {
		t.Fatalf("jitter-tolerant node declared dead: %v", dead)
	}
	// 130ms total silence: past 4× the observed gap too.
	clk.advance(60 * time.Millisecond)
	if dead := tb.Dead(cfg); len(dead) != 1 {
		t.Fatal("node never declared dead")
	}
}

func TestDeadHealOrder(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable()
	tb.SetClock(clk.now)
	cfg := Config{Interval: time.Millisecond, FailAfter: time.Millisecond}
	tb.Register(RoleBackup, "b", 1)
	tb.Register(RoleMaster, "m", 1)
	tb.Register(RoleWitness, "w", 1)
	clk.advance(time.Second)
	dead := tb.Dead(cfg)
	if len(dead) != 3 || dead[0].Role != RoleMaster || dead[1].Role != RoleWitness || dead[2].Role != RoleBackup {
		t.Fatalf("heal order = %v", dead)
	}
}

func TestBeaterStops(t *testing.T) {
	stop := make(chan struct{})
	got := make(chan struct{}, 64)
	done := make(chan struct{})
	go func() {
		Beater(stop, time.Millisecond, func() { got <- struct{}{} })
		close(done)
	}()
	<-got // at least one beat
	close(stop)
	<-done
}

func TestSnapshotSorted(t *testing.T) {
	tb := NewTable()
	tb.Register(RoleWitness, "w1", 1)
	tb.Register(RoleMaster, "m1", 1)
	tb.Register(RoleBackup, "b1", 1)
	snap := tb.Snapshot(Config{}.WithDefaults())
	if len(snap) != 3 || snap[0].Role != RoleMaster || snap[1].Role != RoleBackup || snap[2].Role != RoleWitness {
		t.Fatalf("snapshot order = %v", snap)
	}
	if !snap[0].Alive {
		t.Fatal("fresh node not alive")
	}
}

// TestDeferralClearedByBeat: a node that comes back (beats again) drops
// its report deferral, so a LATER death is a new incident — reported and
// healed again instead of swallowed by the old incident's latch.
func TestDeferralClearedByBeat(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable()
	tb.SetClock(clk.now)
	cfg := Config{Interval: 10 * time.Millisecond}.WithDefaults()

	tb.Register(RoleBackup, "b1", 1)
	clk.advance(cfg.FailAfter + time.Millisecond)
	if len(tb.Dead(cfg)) != 1 {
		t.Fatal("backup not declared dead")
	}
	tb.Defer("b1", clk.now().Add(365*24*time.Hour)) // the backup-down latch

	// The backup restarts and heartbeats; later it dies for good.
	tb.Observe(beat(RoleBackup, "b1", 1))
	clk.advance(cfg.FailAfter + time.Millisecond)
	if dead := tb.Dead(cfg); len(dead) != 1 {
		t.Fatalf("second death swallowed by stale deferral: %v", dead)
	}
}
