// Package health is the failure-detection half of the self-healing
// cluster: heartbeat payloads, a per-partition liveness table with a
// deadline-based (jitter-tolerant) failure detector, and the resident
// beater loop servers run to report themselves.
//
// The split mirrors the rest of the codebase: this package is pure policy
// and bookkeeping — no RPC, no server types — so the detector is unit
// testable with a fake clock, while internal/cluster wires it to the wire
// (OpHeartbeat into the coordinator's table, the coordinator's heal loop
// driving recovery off Dead()). The blueprint is RAMCloud's coordinator
// (the paper's "system configuration manager", §3.6) crossed with
// RIFL-style lease expiry: nodes push liveness instead of the coordinator
// polling, so one missed-deadline policy covers masters, backups, and
// witnesses alike.
package health

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"curp/internal/rpc"
)

// Role classifies a heartbeating node.
type Role uint8

const (
	// RoleMaster is a partition's master server.
	RoleMaster Role = iota + 1
	// RoleBackup is one of the partition's f backups.
	RoleBackup
	// RoleWitness is one of the partition's f witness servers.
	RoleWitness
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleMaster:
		return "master"
	case RoleBackup:
		return "backup"
	case RoleWitness:
		return "witness"
	}
	return "unknown"
}

// Beat is one heartbeat: the sender's identity plus piggybacked load
// stats (meaningful on master beats; zero elsewhere). Load rides along so
// the coordinator's health table doubles as a cheap cluster dashboard —
// no extra stats RPC.
type Beat struct {
	Role     Role
	Addr     string
	MasterID uint64
	// Epoch is the sender's recovery epoch (masters only).
	Epoch uint64
	// HeadLSN and Unsynced describe the master's log: total entries and
	// how many are not yet on the backups.
	HeadLSN  uint64
	Unsynced uint64
	// WitnessListVersion is the master's current witness configuration.
	WitnessListVersion uint64
	// FlushThreshold is the master's current (possibly load-adaptive)
	// background-sync batch threshold.
	FlushThreshold uint64
	// SpeculativeOps and ConflictSyncs are the master's cumulative
	// fast-path executions and conflict-triggered syncs — the two numbers
	// that make the coordinator's table a per-partition CURP dashboard
	// (fast-path % without scraping the master itself).
	SpeculativeOps uint64
	ConflictSyncs  uint64
}

// Encode returns the beat's wire form.
func (b *Beat) Encode() []byte {
	e := rpc.NewEncoder(64 + len(b.Addr))
	e.U8(uint8(b.Role))
	e.String(b.Addr)
	e.U64(b.MasterID)
	e.U64(b.Epoch)
	e.U64(b.HeadLSN)
	e.U64(b.Unsynced)
	e.U64(b.WitnessListVersion)
	e.U64(b.FlushThreshold)
	e.U64(b.SpeculativeOps)
	e.U64(b.ConflictSyncs)
	return e.Bytes()
}

// DecodeBeat parses a heartbeat payload.
func DecodeBeat(p []byte) (*Beat, error) {
	d := rpc.NewDecoder(p)
	b := &Beat{
		Role:               Role(d.U8()),
		Addr:               d.String(),
		MasterID:           d.U64(),
		Epoch:              d.U64(),
		HeadLSN:            d.U64(),
		Unsynced:           d.U64(),
		WitnessListVersion: d.U64(),
		FlushThreshold:     d.U64(),
		SpeculativeOps:     d.U64(),
		ConflictSyncs:      d.U64(),
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Config tunes the heartbeat cadence and the failure deadline.
type Config struct {
	// Interval is the heartbeat cadence (beaters jitter it ±25% so a
	// fleet never marches in lockstep). DefaultInterval when 0.
	Interval time.Duration
	// FailAfter is the silence after which a node is declared dead. It
	// must comfortably exceed Interval plus scheduling jitter; 0 selects
	// failAfterFactor × Interval.
	FailAfter time.Duration
}

const (
	// DefaultInterval is the production heartbeat cadence.
	DefaultInterval = 25 * time.Millisecond
	// failAfterFactor is the default deadline in intervals. 8 tolerates
	// several jittered beats lost to scheduling or a dropped connection
	// before recovery — the paper's recovery story is cheap, but a false
	// positive still fences a healthy master.
	failAfterFactor = 8
)

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.FailAfter <= 0 {
		c.FailAfter = failAfterFactor * c.Interval
	}
	return c
}

// node is one registered node's liveness record.
type node struct {
	role     Role
	addr     string
	masterID uint64
	last     time.Time // last beat (seeded with registration time)
	beats    uint64
	// gapEWMA smooths the observed inter-beat gap; the deadline stretches
	// toward a multiple of it for nodes that historically beat slower
	// than configured (paused VMs, loaded hosts) — the jitter tolerance.
	gapEWMA float64 // nanoseconds
	lastObs Beat
	// deferUntil suppresses Dead() reports (heal retry backoff, or
	// roles with no automatic replacement that were already reported).
	deferUntil time.Time
}

// NodeStatus is one node's liveness snapshot.
type NodeStatus struct {
	Role     Role
	Addr     string
	MasterID uint64
	// Age is the silence since the last beat (or registration).
	Age time.Duration
	// Beats counts observed heartbeats.
	Beats uint64
	// MeanGap is the smoothed inter-beat gap (0 until two beats arrived).
	MeanGap time.Duration
	// Alive reports whether the node is within its deadline.
	Alive bool
	// Last is the most recent beat's payload (zero until one arrived).
	Last Beat
}

// String renders a compact human-readable form (curpctl status).
func (n NodeStatus) String() string {
	state := "alive"
	if !n.Alive {
		state = "DEAD"
	}
	return fmt.Sprintf("%-7s %s [%s, hb %v ago, beats %d]", n.Role, n.Addr, state, n.Age.Round(time.Millisecond), n.Beats)
}

// Table tracks the registered nodes of one partition. Only registered
// nodes are watched: a straggler beat from a decommissioned address is
// dropped, so a deposed master cannot re-register itself by heartbeating.
// Safe for concurrent use.
type Table struct {
	mu    sync.Mutex
	nodes map[string]*node
	now   func() time.Time // test hook
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{nodes: make(map[string]*node), now: time.Now}
}

// SetClock overrides the table's time source (tests).
func (t *Table) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// Register starts watching a node, seeding its deadline clock at now so a
// freshly added node gets one full FailAfter of grace before its first
// beat is due. Re-registering an address resets its history.
func (t *Table) Register(role Role, addr string, masterID uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[addr] = &node{role: role, addr: addr, masterID: masterID, last: t.now()}
}

// Forget stops watching a node (decommissioned or replaced).
func (t *Table) Forget(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.nodes, addr)
}

// Defer suppresses Dead() reports for addr until the given time — the
// heal loop's retry backoff, and the "reported once" latch for roles with
// no automatic replacement.
func (t *Table) Defer(addr string, until time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.nodes[addr]; n != nil {
		n.deferUntil = until
	}
}

// Observe records a heartbeat. Beats from unregistered addresses are
// dropped.
func (t *Table) Observe(b *Beat) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.nodes[b.Addr]
	if n == nil {
		return
	}
	now := t.now()
	if n.beats > 0 {
		gap := float64(now.Sub(n.last))
		if gap < 0 {
			gap = 0
		}
		if n.gapEWMA == 0 {
			n.gapEWMA = gap
		} else {
			n.gapEWMA += (gap - n.gapEWMA) * 0.25
		}
	}
	n.last = now
	n.beats++
	n.lastObs = *b
	// A beat ends any report deferral: a node that came back and later
	// dies again is a NEW incident and must be reported (and healed)
	// again, not swallowed by the previous incident's latch.
	n.deferUntil = time.Time{}
}

// deadline returns the node's effective silence budget: the configured
// FailAfter, stretched to 4× the node's own smoothed beat gap when that
// is larger (jitter tolerance for chronically slow beaters).
func (n *node) deadline(cfg Config) time.Duration {
	d := cfg.FailAfter
	if adaptive := time.Duration(4 * n.gapEWMA); adaptive > d {
		d = adaptive
	}
	return d
}

// status builds a NodeStatus. Must hold t.mu.
func (n *node) status(now time.Time, cfg Config) NodeStatus {
	age := now.Sub(n.last)
	return NodeStatus{
		Role:     n.role,
		Addr:     n.addr,
		MasterID: n.masterID,
		Age:      age,
		Beats:    n.beats,
		MeanGap:  time.Duration(n.gapEWMA),
		Alive:    age <= n.deadline(cfg),
		Last:     n.lastObs,
	}
}

// Snapshot returns every registered node's status, masters first, then
// backups and witnesses, each sorted by address.
func (t *Table) Snapshot(cfg Config) []NodeStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]NodeStatus, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n.status(now, cfg))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Dead returns nodes past their deadline whose report is not deferred,
// in the order masters → witnesses → backups so the heal loop restores
// the data path before it repairs durability redundancy.
func (t *Table) Dead(cfg Config) []NodeStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []NodeStatus
	for _, n := range t.nodes {
		if now.Before(n.deferUntil) {
			continue
		}
		if st := n.status(now, cfg); !st.Alive {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := healOrder(out[i].Role), healOrder(out[j].Role)
		if ri != rj {
			return ri < rj
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

func healOrder(r Role) int {
	switch r {
	case RoleMaster:
		return 0
	case RoleWitness:
		return 1
	}
	return 2
}

// Alive reports whether addr is registered and within its deadline.
func (t *Table) Alive(addr string, cfg Config) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.nodes[addr]
	if n == nil {
		return false
	}
	return t.now().Sub(n.last) <= n.deadline(cfg)
}

// AllAlive reports whether every registered node is within its deadline —
// the "cluster is healed" predicate WaitHealthy polls. Deferred nodes
// count as dead: a backup that went down and has no automatic
// replacement keeps the partition reported unhealthy.
func (t *Table) AllAlive(cfg Config) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for _, n := range t.nodes {
		if now.Sub(n.last) > n.deadline(cfg) {
			return false
		}
	}
	return true
}

// Beater invokes send on the configured cadence, jittered ±25%, until
// stop closes. It runs in the caller's goroutine (callers `go` it); send
// failures are the detector's signal and are deliberately not retried
// faster — a dead coordinator link looks exactly like a dead node, and
// resolving that ambiguity is the coordinator's job, not the beater's.
func Beater(stop <-chan struct{}, interval time.Duration, send func()) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	timer := time.NewTimer(jittered(interval))
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
			send()
			timer.Reset(jittered(interval))
		}
	}
}

// jittered spreads an interval uniformly over [0.75, 1.25] × d.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(int64(d) - half/2 + rand.Int63n(half+1))
}
