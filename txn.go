package curp

import (
	"context"

	"curp/internal/txn"
)

// Transaction errors.
var (
	// ErrTxnAborted reports a transaction that did not commit — a read's
	// version changed concurrently, a buffered increment targeted a
	// non-counter value, or an orphan resolver decided abort first.
	// Nothing was applied on any shard; build a fresh Txn and retry.
	ErrTxnAborted = txn.ErrTxnAborted
	// ErrTxnDone reports use of a Txn after Commit or Abort.
	ErrTxnDone = txn.ErrTxnDone
)

// Txn is a buffered atomic transaction: Get reads linearizably (recording
// the version it saw), Put/Increment/Delete buffer writes locally, and
// Commit applies everything atomically — across shards — or nothing.
//
// Commit picks the cheapest safe protocol. When every key lives on one
// shard, the whole transaction becomes a single atomic command through
// CURP's normal update path: recorded on witnesses and, when it commutes
// with the master's unsynced window, completed speculatively in 1 RTT with
// no locks and no extra round trips. When keys span shards, Commit runs a
// client-coordinated two-phase commit: participants validate read versions
// and lock the keys, the commit decision is made durable as a RIFL-tracked
// record on the transaction's home shard (witness/backup replicated,
// recovered after a master crash, migrated with its range during a
// Rebalance), and the decision is then distributed. Orphaned locks left by
// a dead coordinator resolve server-side: after a timeout the participant
// asks the home shard, which records an abort by default.
//
// Commit returns nil exactly when the transaction committed and is
// durable. ErrTxnAborted means nothing was applied anywhere — optimistic
// validation failed — and the application should rebuild and retry. A
// transaction caught by a live Rebalance retries internally under the new
// ring (or aborts cleanly); it never wedges locks.
//
// A Txn is not safe for concurrent use. It holds no server-side state
// before Commit, so Abort (or just dropping the Txn) is free.
type Txn struct {
	inner *txn.Txn
}

// Txn opens an empty transaction on a single-partition deployment. All
// keys share the one shard, so Commit always uses the 1-RTT-capable
// single-shard path.
func (c *Client) Txn() *Txn {
	return &Txn{inner: txn.New(c.inner.TxnBackend())}
}

// Txn opens an empty transaction spanning any subset of the deployment's
// shards.
func (c *ShardedClient) Txn() *Txn {
	return &Txn{inner: txn.New(c.inner.TxnBackend())}
}

// Get reads key within the transaction. The first read of a key is
// linearizable and records the version Commit will revalidate; reads of
// keys the transaction has written reflect the buffered writes
// (read-your-writes).
func (t *Txn) Get(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	return t.inner.Get(ctx, key)
}

// Put buffers a write of value under key.
func (t *Txn) Put(key, value []byte) { t.inner.Put(key, value) }

// Delete buffers a removal of key.
func (t *Txn) Delete(key []byte) { t.inner.Delete(key) }

// Increment buffers adding delta to the counter at key; the new value is
// observable through Get before commit and applied exactly-once at commit.
func (t *Txn) Increment(key []byte, delta int64) { t.inner.Increment(key, delta) }

// Commit atomically validates every read and applies every buffered
// write; see the type documentation for the protocol and error contract.
func (t *Txn) Commit(ctx context.Context) error { return t.inner.Commit(ctx) }

// Abort discards the transaction. It cannot fail: no shard holds any state
// for an uncommitted transaction.
func (t *Txn) Abort() { t.inner.Abort() }
