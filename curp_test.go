package curp

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	c, err := Start(Options{F: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if _, err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("get: %v %v %q", err, ok, v)
	}
	if n, err := cl.Increment(ctx, []byte("n"), 5); err != nil || n != 5 {
		t.Fatalf("incr: %v %d", err, n)
	}
	applied, _, err := cl.CondPut(ctx, []byte("cas"), []byte("x"), 0)
	if err != nil || !applied {
		t.Fatalf("condput: %v %v", err, applied)
	}
	if err := cl.MultiPut(ctx, []KV{{[]byte("a"), []byte("1")}, {[]byte("b"), []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get(ctx, []byte("k")); ok {
		t.Fatal("deleted key visible")
	}
	st := cl.Stats()
	if st.FastPath == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	c, err := Start(Options{F: 2, SyncBatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.NewClient("app")
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := cl.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashMaster()
	if err := c.Recover("master-b"); err != nil {
		t.Fatal(err)
	}
	if c.MasterAddr() != "master-b" {
		t.Fatalf("master addr = %s", c.MasterAddr())
	}
	for i := 0; i < 10; i++ {
		v, ok, err := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("k%d: %v %v %q", i, err, ok, v)
		}
	}
}

func TestPublicAPILatencyInjection(t *testing.T) {
	// Geo-style: master is far (5ms one-way), witnesses/backups near.
	far := c2s("master1")
	c, err := Start(Options{F: 1, Latency: func(from, to string) time.Duration {
		if far[from] || far[to] {
			return 25 * time.Millisecond
		}
		return 100 * time.Microsecond
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.NewClient("app")
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Force a sync so the backup holds the value and the witness is clean.
	if _, err := cl.Put(ctx, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v, ok, err := cl.GetNearby(ctx, []byte("k"))
	local := time.Since(start)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("nearby: %v %v %q", err, ok, v)
	}
	if cl.Stats().BackupReads != 1 {
		t.Fatalf("stats = %+v", cl.Stats())
	}
	start = time.Now()
	if _, _, err := cl.Get(ctx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	remote := time.Since(start)
	// The nearby read avoids both 5ms wide-area legs; compare against the
	// master read rather than wall-clock (host timer granularity inflates
	// sub-millisecond sleeps).
	if local*2 > remote {
		t.Fatalf("nearby read %v not ≪ master read %v", local, remote)
	}
	if len(c.WitnessAddrs()) != 1 || len(c.BackupAddrs()) != 1 {
		t.Fatal("addr accessors")
	}
}

func c2s(ss ...string) map[string]bool {
	m := map[string]bool{}
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func TestDurableCache(t *testing.T) {
	d, err := NewDurableCache(Options{F: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Set(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := d.Get(ctx, []byte("k")); !ok || string(v) != "v" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if n, err := d.Incr(ctx, []byte("c"), 7); err != nil || n != 7 {
		t.Fatalf("incr: %v %d", err, n)
	}
	if err := d.HSet(ctx, []byte("h"), []byte("f"), []byte("hv")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := d.HGet(ctx, []byte("h"), []byte("f")); !ok || string(v) != "hv" {
		t.Fatalf("hget = %q", v)
	}
	if n, err := d.RPush(ctx, []byte("l"), []byte("x")); err != nil || n != 1 {
		t.Fatalf("rpush: %v %d", err, n)
	}
	if vs, err := d.LRange(ctx, []byte("l"), 0, -1); err != nil || len(vs) != 1 {
		t.Fatalf("lrange: %v %q", err, vs)
	}
	// Distinct keys → all updates on the 1-RTT path, zero fsyncs so far
	// except the one forced by reading un-fsynced keys... reads DO force
	// syncs, so just check the fast-path counter.
	if st := d.Stats(); st.FastPath == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The zero Options value follows Start's defaults: F=3 witnesses, the
	// paper's witness geometry, and the hot-key heuristic enabled.
	dd, err := NewDurableCache(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.witnesses) != 3 {
		t.Fatalf("default cache has %d witnesses, want 3", len(dd.witnesses))
	}
	// An invalid explicit witness geometry is rejected, not silently
	// patched.
	if _, err := NewDurableCache(Options{WitnessSlots: 10, WitnessWays: 4}); err == nil {
		t.Fatal("invalid witness geometry should be rejected")
	}
}

func TestDurableCacheCrashRecovery(t *testing.T) {
	d, _ := NewDurableCache(Options{F: 1, SyncBatchSize: 25})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := d.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	durable := d.Crash() // un-fsynced tail lost
	r, err := RecoverCache(durable, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v, ok, err := r.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after crash: %v %v %q", i, err, ok, v)
		}
	}
	if r.Fsyncs() == 0 {
		t.Fatal("recovery should fsync the rebuilt log")
	}
}
