module curp

go 1.24
